"""Ranking unit — second phase of the two-step similarity search.

The ranking component "computes the (more accurate) object distance
between the query object and each object in the candidate set, thus
refining the final answers to the query" (section 4.1.1).

Two entry points share one contract:

* :func:`rank_candidates` — the exact serial path: one object-distance
  call per candidate, k-smallest selection.
* :func:`rank_candidates_many` — the batched cascade.  When the object
  distance is the (improved) EMD, it builds all cost matrices from one
  packed computation, orders candidates by cheap provable lower bounds,
  and runs the transportation simplex only for candidates whose bound
  still beats the running k-th distance.  Results are **bit-identical**
  to :func:`rank_candidates` — same distances, same ``(distance,
  object_id)`` ordering, same deterministic ties — because the bounds
  are conservative and the exact solves use the same cost values the
  per-candidate path would compute.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .emd import (
    EMDDistance,
    emd_lower_bound_centroid,
    packed_cost_matrices,
    rowcol_bound_from_costs,
)
from .transport import solve_transport
from .types import ObjectSignature

__all__ = [
    "SearchResult",
    "RankParams",
    "RankStats",
    "rank_candidates",
    "rank_candidates_many",
]


@dataclass(frozen=True, order=True)
class SearchResult:
    """One ranked answer: object id and its distance to the query.

    Ordering compares ``(distance, object_id)`` so sorted result lists
    are deterministic under distance ties.
    """

    distance: float
    object_id: int


@dataclass(frozen=True)
class RankParams:
    """Tuning knobs of the batched ranking cascade.

    Serializable (``to_dict`` / ``from_dict``) so the server can expose
    the knobs via ``setparam`` and persist them alongside the engine's
    other parameters.

    Parameters
    ----------
    cascade:
        Master switch.  Off means every candidate gets an exact
        object-distance call (the historical behaviour).
    centroid_bound:
        Use the weighted-l1-of-centroids lower bound (only active for
        the default l1 ground without thresholding).
    rowcol_bound:
        Use the thresholded row/column-minima lower bound (valid for
        every EMD configuration; computed from the already-built cost
        matrix, so it is nearly free).
    dedup_segments:
        Deduplicate bitwise-equal segment rows across candidates before
        the packed ground-distance kernel.
    """

    cascade: bool = True
    centroid_bound: bool = True
    rowcol_bound: bool = True
    dedup_segments: bool = True

    def __post_init__(self) -> None:
        for name in ("cascade", "centroid_bound", "rowcol_bound",
                     "dedup_segments"):
            if not isinstance(getattr(self, name), bool):
                raise ValueError(f"RankParams.{name} must be a bool")

    def to_dict(self) -> Dict[str, bool]:
        return {
            "cascade": self.cascade,
            "centroid_bound": self.centroid_bound,
            "rowcol_bound": self.rowcol_bound,
            "dedup_segments": self.dedup_segments,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, bool]) -> "RankParams":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown RankParams fields: {sorted(unknown)}")
        return cls(**dict(payload))

    def cache_key(self) -> Tuple[bool, bool, bool, bool]:
        return (self.cascade, self.centroid_bound, self.rowcol_bound,
                self.dedup_segments)

    def with_updates(self, **changes: bool) -> "RankParams":
        return replace(self, **changes)


@dataclass
class RankStats:
    """What one ranking pass did — feeds metrics and trace spans.

    ``considered`` counts candidates that survived self-exclusion and
    concurrent-removal checks; ``exact_evals + lower_bound_prunes ==
    considered`` always holds.  ``bound_seconds`` / ``solve_seconds``
    split the cascade's time between bound computation (including the
    packed cost matrices) and exact transportation solves.
    """

    considered: int = 0
    exact_evals: int = 0
    lower_bound_prunes: int = 0
    bound_seconds: float = 0.0
    solve_seconds: float = 0.0

    def merge(self, other: "RankStats") -> None:
        self.considered += other.considered
        self.exact_evals += other.exact_evals
        self.lower_bound_prunes += other.lower_bound_prunes
        self.bound_seconds += other.bound_seconds
        self.solve_seconds += other.solve_seconds

    @property
    def prune_rate(self) -> float:
        if self.considered <= 0:
            return 0.0
        return self.lower_bound_prunes / self.considered


def rank_candidates(
    query: ObjectSignature,
    candidate_ids: Iterable[int],
    objects: Mapping[int, ObjectSignature],
    obj_distance: Callable[[ObjectSignature, ObjectSignature], float],
    top_k: Optional[int] = None,
    exclude_self: bool = False,
) -> List[SearchResult]:
    """Rank candidates by the object distance function, nearest first.

    ``objects`` maps object id to signature (the metadata store view).
    ``exclude_self`` drops a candidate whose id equals ``query.object_id``
    — the usual convention when benchmarking with a query drawn from the
    dataset itself.  Candidates that vanished from ``objects`` between
    filtering and ranking (a concurrent removal) are silently skipped.
    """
    results: List[SearchResult] = []
    for object_id in candidate_ids:
        if exclude_self and object_id == query.object_id:
            continue
        try:
            candidate = objects[object_id]
        except KeyError:
            continue
        results.append(
            SearchResult(float(obj_distance(query, candidate)), int(object_id))
        )
    if top_k is not None:
        # heapq.nsmallest == sorted(results)[:k] (documented equivalence),
        # so ties stay deterministic via SearchResult's (distance, id)
        # ordering — but the serial path stops paying O(n log n) for k≪n.
        return heapq.nsmallest(max(0, top_k), results)
    results.sort()
    return results


def _resolve_candidates(
    query: ObjectSignature,
    candidate_ids: Iterable[int],
    objects: Mapping[int, ObjectSignature],
    exclude_self: bool,
) -> Tuple[List[int], List[ObjectSignature]]:
    ids: List[int] = []
    sigs: List[ObjectSignature] = []
    for object_id in candidate_ids:
        if exclude_self and object_id == query.object_id:
            continue
        try:
            candidate = objects[object_id]
        except KeyError:
            continue
        ids.append(int(object_id))
        sigs.append(candidate)
    return ids, sigs


def rank_candidates_many(
    query: ObjectSignature,
    candidate_ids: Iterable[int],
    objects: Mapping[int, ObjectSignature],
    obj_distance: Callable[[ObjectSignature, ObjectSignature], float],
    top_k: Optional[int] = None,
    exclude_self: bool = False,
    params: Optional[RankParams] = None,
) -> Tuple[List[SearchResult], RankStats]:
    """Batched ranking cascade; results identical to :func:`rank_candidates`.

    When ``obj_distance`` is an :class:`~repro.core.emd.EMDDistance`, the
    cascade (a) builds all thresholded cost matrices from one packed
    ground-distance computation, (b) computes provable lower bounds per
    candidate, (c) visits candidates in ascending ``(bound, object_id)``
    order keeping a running top-k, and (d) calls the transportation
    simplex only while a candidate's bound can still beat the current
    k-th distance — pruning on a *strict* comparison so distance ties
    resolve exactly as the serial path resolves them.

    Falls back to :func:`rank_candidates` (stats still populated) when
    the cascade is disabled, the distance is not EMD, or ``top_k`` does
    not actually cut the candidate list.
    """
    params = params or RankParams()
    ids, sigs = _resolve_candidates(query, candidate_ids, objects, exclude_self)
    stats = RankStats(considered=len(ids))

    use_cascade = (
        params.cascade
        and isinstance(obj_distance, EMDDistance)
        and top_k is not None
        and 0 < top_k < len(ids)
    )
    if not use_cascade:
        started = time.perf_counter()
        results: List[SearchResult] = []
        for object_id, candidate in zip(ids, sigs):
            results.append(
                SearchResult(float(obj_distance(query, candidate)), object_id)
            )
        stats.exact_evals = len(results)
        stats.solve_seconds = time.perf_counter() - started
        if top_k is not None:
            return heapq.nsmallest(max(0, top_k), results), stats
        results.sort()
        return results, stats

    emd_params = obj_distance.params
    bound_started = time.perf_counter()
    matrices = packed_cost_matrices(
        query, sigs, emd_params, dedup=params.dedup_segments
    )
    supply = emd_params.effective_weights(query.weights)
    demands = [emd_params.effective_weights(c.weights) for c in sigs]

    order: List[Tuple[float, int]] = []  # (lower_bound, position)
    for pos, candidate in enumerate(sigs):
        lb = 0.0
        if params.centroid_bound:
            lb = emd_lower_bound_centroid(query, candidate, emd_params)
        if params.rowcol_bound:
            lb = max(
                lb,
                rowcol_bound_from_costs(
                    matrices[pos], supply, demands[pos]
                ),
            )
        order.append((lb, pos))
    # Ascending (bound, object_id): cheap-looking candidates first so the
    # k-th distance tightens fast; id tie-break keeps the visit order —
    # and therefore the float state of the run — deterministic.
    order.sort(key=lambda item: (item[0], ids[item[1]]))
    stats.bound_seconds = time.perf_counter() - bound_started

    solve_started = time.perf_counter()
    # Max-heap of the k best via (-distance, -object_id): heap[0] is the
    # current k-th (worst kept) result under (distance, id) ordering.
    heap: List[Tuple[float, int]] = []
    for lb, pos in order:
        if len(heap) >= top_k:
            kth_dist = -heap[0][0]
            # Strict '>' only: a candidate whose bound ties the k-th
            # distance could still replace it via a smaller object id.
            if lb > kth_dist:
                break
        distance = float(
            solve_transport(supply, demands[pos], matrices[pos]).cost
        )
        stats.exact_evals += 1
        entry = (-distance, -ids[pos])
        if len(heap) < top_k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
    stats.lower_bound_prunes = stats.considered - stats.exact_evals
    stats.solve_seconds = time.perf_counter() - solve_started

    results = [SearchResult(-d, -nid) for d, nid in heap]
    results.sort()
    return results, stats
