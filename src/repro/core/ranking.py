"""Ranking unit — second phase of the two-step similarity search.

The ranking component "computes the (more accurate) object distance
between the query object and each object in the candidate set, thus
refining the final answers to the query" (section 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Mapping, Optional

from .types import ObjectSignature

__all__ = ["SearchResult", "rank_candidates"]


@dataclass(frozen=True, order=True)
class SearchResult:
    """One ranked answer: object id and its distance to the query.

    Ordering compares ``(distance, object_id)`` so sorted result lists
    are deterministic under distance ties.
    """

    distance: float
    object_id: int


def rank_candidates(
    query: ObjectSignature,
    candidate_ids: Iterable[int],
    objects: Mapping[int, ObjectSignature],
    obj_distance: Callable[[ObjectSignature, ObjectSignature], float],
    top_k: Optional[int] = None,
    exclude_self: bool = False,
) -> List[SearchResult]:
    """Rank candidates by the object distance function, nearest first.

    ``objects`` maps object id to signature (the metadata store view).
    ``exclude_self`` drops a candidate whose id equals ``query.object_id``
    — the usual convention when benchmarking with a query drawn from the
    dataset itself.  Candidates that vanished from ``objects`` between
    filtering and ranking (a concurrent removal) are silently skipped.
    """
    results: List[SearchResult] = []
    for object_id in candidate_ids:
        if exclude_self and object_id == query.object_id:
            continue
        try:
            candidate = objects[object_id]
        except KeyError:
            continue
        results.append(
            SearchResult(float(obj_distance(query, candidate)), int(object_id))
        )
    results.sort()
    if top_k is not None:
        results = results[: max(0, top_k)]
    return results
