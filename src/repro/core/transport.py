"""Transportation-problem solver used by the Earth Mover's Distance.

EMD between two weighted sets of feature vectors (section 4.2.2) is the
classical balanced transportation problem: move supply ``w(X_i)`` to
demand ``w(Y_j)`` at unit cost ``d(X_i, Y_j)`` minimizing total work.

Objects in Ferret have few segments (1-11 in the paper's datasets), so a
dense transportation simplex is the right tool: Vogel's approximation
builds a good initial basic feasible solution, and the MODI (u-v) method
pivots to optimality.  Degeneracy is handled by keeping exactly
``m + n - 1`` basic cells (zero-flow cells stay basic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

__all__ = ["TransportResult", "solve_transport"]

_MAX_PIVOTS_FACTOR = 50  # pivot cap: factor * (m + n), guards non-termination


@dataclass(frozen=True)
class TransportResult:
    """Optimal flow and cost of a balanced transportation problem."""

    flow: np.ndarray  # (m, n) non-negative flow matrix
    cost: float  # sum(flow * costs)
    iterations: int  # MODI pivots performed


def solve_transport(
    supply: np.ndarray,
    demand: np.ndarray,
    costs: np.ndarray,
    tolerance: float = 1e-12,
) -> TransportResult:
    """Solve ``min sum f_ij c_ij`` s.t. row sums = supply, col sums = demand.

    ``supply`` and ``demand`` must be non-negative and have equal totals
    (within a small relative tolerance; they are rescaled to match
    exactly).  Zero-weight rows/columns are allowed and receive no flow.
    """
    supply = np.asarray(supply, dtype=np.float64).copy()
    demand = np.asarray(demand, dtype=np.float64).copy()
    costs = np.asarray(costs, dtype=np.float64)
    m, n = supply.shape[0], demand.shape[0]
    if costs.shape != (m, n):
        raise ValueError(f"costs must be ({m}, {n}), got {costs.shape}")
    if np.any(supply < 0) or np.any(demand < 0):
        raise ValueError("supply and demand must be non-negative")
    total_s, total_d = float(supply.sum()), float(demand.sum())
    if total_s <= 0.0 or total_d <= 0.0:
        return TransportResult(np.zeros((m, n)), 0.0, 0)
    if abs(total_s - total_d) > 1e-6 * max(total_s, total_d):
        raise ValueError(
            f"unbalanced problem: supply={total_s} demand={total_d}"
        )
    demand *= total_s / total_d  # exact balance for the simplex

    flow, basis = _vogel_initial_solution(supply, demand, costs)
    _ensure_spanning_basis(basis, flow, m, n)

    iterations = 0
    max_pivots = _MAX_PIVOTS_FACTOR * (m + n)
    while iterations < max_pivots:
        u, v = _compute_potentials(basis, costs, m, n)
        entering = _find_entering(costs, u, v, basis, tolerance)
        if entering is None:
            break
        cycle = _find_cycle(basis, entering, m, n)
        _pivot(flow, basis, cycle)
        iterations += 1

    return TransportResult(flow, float((flow * costs).sum()), iterations)


def _vogel_initial_solution(
    supply: np.ndarray, demand: np.ndarray, costs: np.ndarray
) -> Tuple[np.ndarray, Set[Tuple[int, int]]]:
    """Vogel's approximation: repeatedly satisfy the row/column with the
    largest penalty (difference between its two cheapest open cells)."""
    m, n = costs.shape
    s = supply.copy()
    d = demand.copy()
    flow = np.zeros((m, n), dtype=np.float64)
    basis: Set[Tuple[int, int]] = set()
    row_open = s > 0
    col_open = d > 0
    # Zero rows/columns never receive flow but still need basis coverage;
    # _ensure_spanning_basis attaches them afterwards.
    work = costs.copy()

    while row_open.any() and col_open.any():
        best_cell: Optional[Tuple[int, int]] = None
        best_penalty = -1.0
        open_cols = np.where(col_open)[0]
        open_rows = np.where(row_open)[0]
        for i in open_rows:
            row = work[i, open_cols]
            penalty, j_local = _penalty_and_argmin(row)
            if penalty > best_penalty:
                best_penalty = penalty
                best_cell = (int(i), int(open_cols[j_local]))
        for j in open_cols:
            col = work[open_rows, j]
            penalty, i_local = _penalty_and_argmin(col)
            if penalty > best_penalty:
                best_penalty = penalty
                best_cell = (int(open_rows[i_local]), int(j))
        assert best_cell is not None
        i, j = best_cell
        amount = min(s[i], d[j])
        flow[i, j] = amount
        basis.add((i, j))
        s[i] -= amount
        d[j] -= amount
        # Close exactly one side on ties to preserve m+n-1 basic cells.
        if s[i] <= 1e-15 and row_open.sum() > 1:
            row_open[i] = False
            s[i] = 0.0
        elif d[j] <= 1e-15:
            col_open[j] = False
            d[j] = 0.0
        else:
            row_open[i] = s[i] > 1e-15
    return flow, basis


def _penalty_and_argmin(values: np.ndarray) -> Tuple[float, int]:
    """Vogel penalty (2nd-smallest minus smallest) and argmin of ``values``."""
    j = int(np.argmin(values))
    if values.shape[0] == 1:
        return float(values[0]), j
    smallest = values[j]
    rest = np.delete(values, j)
    return float(rest.min() - smallest), j


def _ensure_spanning_basis(
    basis: Set[Tuple[int, int]], flow: np.ndarray, m: int, n: int
) -> None:
    """Grow ``basis`` to a spanning tree of the bipartite node graph.

    Degenerate Vogel runs (and zero-weight rows/columns) can leave the
    basis graph disconnected or short of ``m + n - 1`` arcs; we connect
    components through zero-flow basic cells, which is the standard
    epsilon-perturbation treatment.
    """
    parent = list(range(m + n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> bool:
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        parent[ra] = rb
        return True

    for (i, j) in basis:
        union(i, m + j)
    for i in range(m):
        for j in range(n):
            if len(basis) >= m + n - 1:
                return
            if (i, j) not in basis and union(i, m + j):
                basis.add((i, j))  # zero-flow basic cell


def _compute_potentials(
    basis: Set[Tuple[int, int]], costs: np.ndarray, m: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``u_i + v_j = c_ij`` over basic cells by tree traversal."""
    u = np.full(m, np.nan)
    v = np.full(n, np.nan)
    by_row: List[List[int]] = [[] for _ in range(m)]
    by_col: List[List[int]] = [[] for _ in range(n)]
    for (i, j) in basis:
        by_row[i].append(j)
        by_col[j].append(i)
    u[0] = 0.0
    stack: List[Tuple[str, int]] = [("row", 0)]
    while stack:
        kind, idx = stack.pop()
        if kind == "row":
            for j in by_row[idx]:
                if np.isnan(v[j]):
                    v[j] = costs[idx, j] - u[idx]
                    stack.append(("col", j))
        else:
            for i in by_col[idx]:
                if np.isnan(u[i]):
                    u[i] = costs[i, idx] - v[idx]
                    stack.append(("row", i))
    # A spanning basis reaches every node; guard against numerical gaps.
    u = np.nan_to_num(u, nan=0.0)
    v = np.nan_to_num(v, nan=0.0)
    return u, v


def _find_entering(
    costs: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    basis: Set[Tuple[int, int]],
    tolerance: float,
) -> Optional[Tuple[int, int]]:
    """Most negative reduced-cost non-basic cell, or None at optimality."""
    reduced = costs - u[:, None] - v[None, :]
    for (i, j) in basis:
        reduced[i, j] = 0.0
    i, j = np.unravel_index(np.argmin(reduced), reduced.shape)
    if reduced[i, j] >= -max(tolerance, 1e-10 * (1.0 + abs(costs).max())):
        return None
    return int(i), int(j)


def _find_cycle(
    basis: Set[Tuple[int, int]], entering: Tuple[int, int], m: int, n: int
) -> List[Tuple[int, int]]:
    """Unique alternating cycle created by adding ``entering`` to the basis tree.

    Returns cells in cycle order starting at ``entering``; even positions
    gain flow, odd positions lose flow.
    """
    # Adjacency over the basis tree (bipartite: rows 0..m-1, cols m..m+n-1)
    adj: List[List[Tuple[int, Tuple[int, int]]]] = [[] for _ in range(m + n)]
    for (i, j) in basis:
        adj[i].append((m + j, (i, j)))
        adj[m + j].append((i, (i, j)))
    start, goal = entering[0], m + entering[1]
    # DFS path from entering-row to entering-column through the tree.
    prev: dict = {start: None}
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            break
        for nxt, cell in adj[node]:
            if nxt not in prev:
                prev[nxt] = (node, cell)
                stack.append(nxt)
    if goal not in prev:
        raise RuntimeError("basis is not spanning; cannot close pivot cycle")
    path_cells: List[Tuple[int, int]] = []
    node = goal
    while prev[node] is not None:
        parent, cell = prev[node]
        path_cells.append(cell)
        node = parent
    path_cells.reverse()
    return [entering] + path_cells[::-1]


def _pivot(
    flow: np.ndarray, basis: Set[Tuple[int, int]], cycle: List[Tuple[int, int]]
) -> None:
    """Shift flow around the cycle; entering cell gains, leaving cell exits."""
    losing = cycle[1::2]
    theta = min(flow[i, j] for (i, j) in losing)
    leave_idx = min(
        range(len(losing)), key=lambda k: (flow[losing[k]], losing[k])
    )
    for pos, (i, j) in enumerate(cycle):
        if pos % 2 == 0:
            flow[i, j] += theta
        else:
            flow[i, j] -= theta
            if flow[i, j] < 0.0:  # numerical dust
                flow[i, j] = 0.0
    basis.add(cycle[0])
    basis.discard(losing[leave_idx])
