"""Segment distance functions.

The toolkit's filtering unit uses a *segment distance function* between
pairs of feature vectors (section 4.2.2).  The built-ins here cover every
distance the paper uses: lp norms (l1 for images/audio/shapes, l2 for the
SHD baseline), weighted l1, and the Pearson / Spearman correlation
distances used by the genomics group (section 5.4).

All functions accept 1-D vectors and the ``*_to_many`` variants accept a
``(rows, D)`` matrix for vectorized scans.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

__all__ = [
    "chi_square_distance",
    "histogram_intersection_distance",
    "lp_distance",
    "l1_distance",
    "l2_distance",
    "weighted_l1_distance",
    "pearson_distance",
    "spearman_distance",
    "cosine_distance",
    "l1_to_many",
    "l2_to_many",
    "weighted_l1_to_many",
    "get_distance",
    "register_distance",
    "SegmentDistance",
]

SegmentDistance = Callable[[np.ndarray, np.ndarray], float]


def lp_distance(a: np.ndarray, b: np.ndarray, p: float) -> float:
    """The lp norm distance ``(sum |a_i - b_i|^p)^(1/p)`` from section 2."""
    if p <= 0:
        raise ValueError("p must be positive")
    diff = np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))
    if p == 1:
        return float(diff.sum())
    if p == 2:
        return float(np.sqrt(np.square(diff).sum()))
    if np.isinf(p):
        return float(diff.max(initial=0.0))
    return float(np.power(np.power(diff, p).sum(), 1.0 / p))


def l1_distance(a: np.ndarray, b: np.ndarray) -> float:
    return lp_distance(a, b, 1)


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    return lp_distance(a, b, 2)


def weighted_l1_distance(
    a: np.ndarray, b: np.ndarray, weights: np.ndarray
) -> float:
    """Weighted l1 distance — the image segment distance (section 5.1)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != a.shape:
        raise ValueError("weights must match vector shape")
    return float(np.abs(a - b).dot(w))


def chi_square_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric chi-squared distance ``0.5 sum (a-b)^2 / (a+b)``.

    A standard histogram comparison in CBIR; bins where both inputs are
    zero contribute nothing.  Inputs must be non-negative.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if np.any(a < 0) or np.any(b < 0):
        raise ValueError("chi-squared distance needs non-negative inputs")
    denom = a + b
    mask = denom > 0
    diff = a - b
    return float(0.5 * np.sum(np.square(diff[mask]) / denom[mask]))


def histogram_intersection_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - sum min(a, b) / max(sum a, sum b)`` — the Swain-Ballard
    histogram intersection turned into a dissimilarity in [0, 1].

    Inputs must be non-negative; two empty histograms are identical.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if np.any(a < 0) or np.any(b < 0):
        raise ValueError("histogram intersection needs non-negative inputs")
    norm = max(float(a.sum()), float(b.sum()))
    if norm == 0.0:
        return 0.0
    return float(1.0 - np.minimum(a, b).sum() / norm)


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - cos(a, b)``; 0 for identical directions, up to 2 for opposite."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0 if na == nb else 1.0
    return float(1.0 - np.clip(a.dot(b) / (na * nb), -1.0, 1.0))


def pearson_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - r`` where r is the Pearson correlation coefficient.

    Constant vectors have undefined correlation; we treat a pair of
    constant vectors as perfectly correlated (distance 0) and a constant
    vs non-constant pair as uncorrelated (distance 1), which matches how
    gene-expression tools handle flat profiles.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    da = a - a.mean()
    db = b - b.mean()
    na = np.linalg.norm(da)
    nb = np.linalg.norm(db)
    if na == 0.0 or nb == 0.0:
        return 0.0 if na == nb else 1.0
    r = np.clip(da.dot(db) / (na * nb), -1.0, 1.0)
    return float(1.0 - r)


def _rankdata(x: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), 1-based like scipy."""
    order = np.argsort(x, kind="stable")
    ranks = np.empty(len(x), dtype=np.float64)
    sorted_x = x[order]
    i = 0
    while i < len(x):
        j = i
        while j + 1 < len(x) and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearman_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - rho`` where rho is Spearman's rank correlation."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return pearson_distance(_rankdata(a), _rankdata(b))


def l1_to_many(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """l1 distances from ``query`` to every row of ``matrix``."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    return np.abs(matrix - np.asarray(query, dtype=np.float64)).sum(axis=1)


def l2_to_many(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    diff = matrix - np.asarray(query, dtype=np.float64)
    return np.sqrt(np.square(diff).sum(axis=1))


def weighted_l1_to_many(
    query: np.ndarray, matrix: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    diff = np.abs(matrix - np.asarray(query, dtype=np.float64))
    return diff.dot(np.asarray(weights, dtype=np.float64))


_REGISTRY: Dict[str, SegmentDistance] = {
    "l1": l1_distance,
    "l2": l2_distance,
    "cosine": cosine_distance,
    "pearson": pearson_distance,
    "spearman": spearman_distance,
    "chi2": chi_square_distance,
    "histogram_intersection": histogram_intersection_distance,
}


def register_distance(name: str, fn: SegmentDistance) -> None:
    """Register a user-supplied segment distance under ``name``.

    This is the "plug in your own distance function" half of the paper's
    construction interface; the command-line protocol refers to distances
    by these names.
    """
    if not callable(fn):
        raise TypeError("distance function must be callable")
    _REGISTRY[name] = fn


def get_distance(name: str) -> SegmentDistance:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown distance {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
