"""Sharded parallel filtering scan: thread and process backends.

The filtering unit streams over *all* database segment sketches per
query (section 4.1.1); the batched kernel made that scan vector-wide,
and this module fans it out across cores.  Two pool implementations
share one contract (same ``load`` / ``scan_topk`` surface, same
deterministic results):

- :class:`ThreadFilterPool` — worker *threads* over zero-copy views of
  one in-process arena.  ``hamming_many_to_many`` releases the GIL in
  its hot loop when numpy >= 2.0 provides ``np.bitwise_count``, so the
  per-shard scans genuinely overlap with no pickling and no
  shared-memory attach.  This is the default pick of the ``auto``
  backend on multi-core hosts.
- :class:`ParallelFilterPool` — persistent worker *processes* over a
  ``multiprocessing.shared_memory`` arena.  The consolidated
  ``(n_rows, n_words)`` sketch matrix and its owner array are copied
  once into shared blocks; workers map zero-copy views of their row
  shards.  A whole ``query_many`` batch travels to each worker as one
  fused binary message (raw query/threshold words + a packed header,
  no per-array pickling) and the reply carries the worker's local
  top-k plus its piggybacked telemetry delta — exactly one round trip
  per worker per batch, counted by ``parallel.dispatch_round_trips``.

Both pools cut rows into contiguous shards through the same
:func:`shard_bounds` assignment and select through the same
deterministic smallest-row-wins rule
(:func:`~repro.core.filtering.select_k_smallest`), which makes their
candidate sets *bit-identical* to the single-process paths — the
per-shard top-k provably contains every globally selected row.

:func:`choose_backend` is the cost model behind
``ParallelConfig.backend="auto"``: serial below the work floor or on a
single core, threads when the Hamming kernel releases the GIL,
processes otherwise (see docs/PERFORMANCE.md for the matrix).

Staleness is tracked by the segment store's mutation epoch: a pool
records the epoch its arena was loaded from, and the engine reloads
(reshards) when they diverge.  On any pool failure the engine falls
back to the serial scan and keeps answering queries;
:attr:`ParallelScanError.kind` says *how* the pool failed (worker
crash, timeout, protocol error, closed pool) so the fallback can be
classified instead of absorbed generically.

A bounded LRU :class:`QueryResultCache` (also epoch-invalidated) sits
in front of the scan so repeated queries of a skewed stream skip it
entirely; with ``metrics_prefix`` it doubles as the cluster
coordinator's result cache (``cluster.cache.*`` series).

See docs/PERFORMANCE.md for the shard layout, backend-selection
matrix, pool lifecycle, and tuning knobs.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor, TimeoutError as _FutureTimeout
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import multiprocessing
import numpy as np

from ..observability import log as _log
from ..observability import metrics as _metrics
from .bitvector import _HAS_BITWISE_COUNT, hamming_many_to_many
from .filtering import (
    FilterParams,
    _stack_query_rows,
    select_k_smallest,
)
from .types import ObjectSignature

__all__ = [
    "BACKENDS",
    "FilterPool",
    "ParallelConfig",
    "ParallelFilterPool",
    "ParallelScanError",
    "QueryResultCache",
    "ThreadFilterPool",
    "available_cores",
    "choose_backend",
    "hamming_kernel_releases_gil",
    "parallel_filter_candidates",
    "parallel_sketch_filter",
    "parallel_sketch_filter_many",
    "shard_bounds",
]

# Masking value for dead / over-threshold rows inside workers: above any
# real Hamming distance, below no distance, and shared with the merge so
# padded entries sort last and never survive the final selection.
_SENTINEL = np.uint32(np.iinfo(np.uint32).max)

#: Recognized ``ParallelConfig.backend`` values; ``auto`` resolves
#: through :func:`choose_backend` at pool-build time.
BACKENDS = ("auto", "serial", "thread", "process")

#: ``parallel.backend`` gauge encoding (0 = serial, 1 = thread,
#: 2 = process); see docs/OBSERVABILITY.md.
BACKEND_GAUGE_VALUES = {"serial": 0, "thread": 1, "process": 2}

# Parent-side pool/cache telemetry (see docs/OBSERVABILITY.md).  Handles
# are created once at import; MetricsRegistry.reset() zeroes them in
# place so they stay valid across test resets.
_M_POOL_SCANS = _metrics.counter("parallel.scans")
_M_POOL_SCAN_SECONDS = _metrics.histogram("parallel.scan_seconds")
_M_POOL_WAIT_SECONDS = _metrics.histogram("parallel.shard_wait_seconds")
_M_POOL_ROUND_TRIPS = _metrics.counter("parallel.worker_round_trips")
_M_DISPATCH_ROUND_TRIPS = _metrics.counter("parallel.dispatch_round_trips")
_M_BACKEND = _metrics.gauge("parallel.backend")
_M_POOL_LOADS = _metrics.counter("parallel.arena_loads")
_M_DELTA_LOADS = _metrics.counter("arena.delta_loads")
_M_POOL_ROWS = _metrics.gauge("parallel.arena_rows")
_M_ERR_SHM_RELEASE = _metrics.counter("errors_absorbed.parallel.shm_release")
_M_ERR_POOL_CLOSE = _metrics.counter("errors_absorbed.parallel.pool_close")
_M_ERR_METRICS_MERGE = _metrics.counter(
    "errors_absorbed.parallel.metrics_merge"
)


class ParallelScanError(RuntimeError):
    """The worker pool failed (dead worker, timeout, protocol error).

    Callers treat this as "pool unusable": the engine answers the query
    through the serial scan and rebuilds or disables the pool.

    ``kind`` classifies the failure for telemetry and error accounting:

    - ``"crash"`` — a worker process died mid-conversation (EOF/EPIPE
      on its pipe); the engine books these under
      ``errors_absorbed.parallel_worker_crash``.
    - ``"timeout"`` — no reply within ``response_timeout``.
    - ``"protocol"`` — the worker answered, but with an error payload.
    - ``"closed"`` — the pool was used after :meth:`close`.
    - ``"state"`` — the pool has no arena loaded.
    """

    def __init__(self, message: str, kind: str = "state") -> None:
        super().__init__(message)
        self.kind = kind


def available_cores() -> int:
    """Cores this process may actually run on.

    ``os.sched_getaffinity`` honors cgroup/container CPU masks;
    ``os.cpu_count`` (the fallback on platforms without affinity) counts
    the whole machine and over-reports inside restricted containers —
    the oversubscription that benched a 2-worker pool on a 1-CPU host.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:
            pass
    return os.cpu_count() or 1


def hamming_kernel_releases_gil() -> bool:
    """True when the Hamming kernel's popcount is GIL-releasing numpy
    (``np.bitwise_count``, numpy >= 2.0) — the precondition for the
    thread backend to scale instead of serializing on the lock."""
    return _HAS_BITWISE_COUNT


@dataclass
class ParallelConfig:
    """Knobs of the parallel filtering scan.

    Parameters
    ----------
    num_workers:
        Worker count; ``None`` means one per *available* core
        (:func:`available_cores`, affinity-aware).  A resolved count of
        1 disables the pool (a single worker only adds dispatch cost).
    shard_rows:
        Rows per contiguous shard; ``None`` splits the arena evenly into
        one shard per worker.
    min_segments:
        Auto-enable threshold: the engine only spins a pool up once the
        store holds at least this many live segments — below it the
        serial scan wins on dispatch overhead alone.
    backend:
        ``"auto"`` (default) resolves through :func:`choose_backend`;
        ``"serial"`` forces the in-process scan; ``"thread"`` /
        ``"process"`` force a pool implementation.  Live-tunable via the
        server's ``setparam parallel backend=...``.
    start_method:
        ``multiprocessing`` start method (process backend only);
        ``None`` picks ``fork`` when available and ``spawn`` otherwise.
    response_timeout:
        Seconds to wait for a worker reply before declaring the pool
        broken.
    cache_entries:
        Capacity of the engine's query-result LRU cache (0 disables).
    enabled:
        Master switch; the server's ``setparam parallel`` toggles it.
    """

    num_workers: Optional[int] = None
    shard_rows: Optional[int] = None
    min_segments: int = 50_000
    backend: str = "auto"
    start_method: Optional[str] = None
    response_timeout: float = 60.0
    cache_entries: int = 256
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel backend {self.backend!r}; "
                f"expected one of {BACKENDS}"
            )

    def effective_workers(self) -> int:
        if self.num_workers is not None:
            return max(1, int(self.num_workers))
        return available_cores()


#: Work floor (distance evaluations per batch: query rows x arena rows)
#: below which a *process* pool cannot amortize its per-batch IPC even
#: on a large arena; threads dispatch for microseconds and skip it.
_MIN_PROCESS_WORK = 2_000_000


def choose_backend(
    cfg: ParallelConfig,
    n_rows: int,
    batch_rows: int = 1,
    cores: Optional[int] = None,
) -> str:
    """Resolve ``cfg.backend`` for one scan shape: the ``auto`` cost model.

    ``n_rows`` is the arena size (live store segments), ``batch_rows``
    the stacked query rows of the batch about to be scanned, ``cores``
    the parallelism actually available (defaults to ``num_workers`` when
    the operator pinned one, else :func:`available_cores` — an explicit
    worker count is a statement that the parallelism exists).

    Decision order:

    1. disabled, a single core, or an arena under ``min_segments``
       -> ``serial`` (no parallelism to win, or dispatch dominates);
    2. GIL-releasing Hamming kernel -> ``thread`` (zero-copy arena
       sharing, no IPC, no arena duplication);
    3. enough per-batch work to amortize one fused round trip per
       worker -> ``process``;
    4. otherwise ``serial`` — a LUT-popcount build scanning small
       batches loses more to IPC than it gains from cores.
    """
    if not cfg.enabled:
        return "serial"
    if cfg.backend != "auto":
        return cfg.backend
    if cores is None:
        cores = (
            cfg.effective_workers()
            if cfg.num_workers is not None
            else available_cores()
        )
    if cores < 2 or n_rows < cfg.min_segments:
        return "serial"
    if hamming_kernel_releases_gil():
        return "thread"
    if n_rows * max(1, batch_rows) >= _MIN_PROCESS_WORK:
        return "process"
    return "serial"


def _arena_capacity(n_rows: int) -> int:
    """Physical rows to allocate for an arena of ``n_rows`` logical rows.

    The headroom is what lets :meth:`load_delta` append in place; once a
    delta would overflow it, the pool reports "cannot apply" and the
    caller full-loads — which re-allocates with fresh headroom.
    """
    return n_rows + max(n_rows // 2, 1024)


def _resolve_start_method(name: Optional[str]) -> str:
    available = multiprocessing.get_all_start_methods()
    if name is not None:
        if name not in available:
            raise ValueError(
                f"start method {name!r} unavailable (have {available})"
            )
        return name
    return "fork" if "fork" in available else "spawn"


def shard_bounds(
    n_rows: int, num_workers: int, shard_rows: Optional[int] = None
) -> List[List[Tuple[int, int]]]:
    """Per-worker lists of contiguous ``(start, stop)`` row ranges.

    Deterministic in its inputs and shared by both pool backends, so a
    thread pool and a process pool with the same geometry scan the same
    shards — a precondition for their bit-identical merges.
    """
    if shard_rows is not None and shard_rows > 0:
        rows_per_shard = shard_rows
    else:
        rows_per_shard = max(1, -(-n_rows // num_workers))
    per_worker: List[List[Tuple[int, int]]] = [[] for _ in range(num_workers)]
    shard = 0
    for start in range(0, n_rows, rows_per_shard):
        stop = min(start + rows_per_shard, n_rows)
        per_worker[shard % num_workers].append((start, stop))
        shard += 1
    return per_worker


def _merge_topk(
    parts_d: List[np.ndarray],
    parts_id: List[np.ndarray],
    k: int,
    n_queries: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic cross-shard merge of per-shard top-k lists."""
    if not parts_d:
        return (
            np.empty((n_queries, 0), dtype=np.uint32),
            np.empty((n_queries, 0), dtype=np.int64),
        )
    if len(parts_d) == 1:
        return parts_d[0], parts_id[0]
    all_d = np.concatenate(parts_d, axis=1)
    all_id = np.concatenate(parts_id, axis=1)
    kk = min(k, all_d.shape[1])
    sel = select_k_smallest(all_d, kk, ids=all_id)
    return (
        np.take_along_axis(all_d, sel, axis=1),
        np.take_along_axis(all_id, sel, axis=1),
    )


# ----------------------------------------------------------------------
# Fused scan codec (process backend)
#
# A scan batch crosses the pipe as ONE binary message per direction:
# magic + packed header + raw array bytes, no pickling of the numpy
# payload.  Control messages (load/metrics/info/stop) stay pickled
# tuples — Connection.send() produces pickle bytes, so the worker can
# receive everything through recv_bytes() and dispatch on the magic.
# ----------------------------------------------------------------------
_SCAN_MAGIC = b"FSB1"
_REPLY_MAGIC = b"FSR1"
_SCAN_HEADER = struct.Struct("<IIIdII")  # n_queries, n_words, k, t_sent,
#                                          has_thresholds, origin_len
_REPLY_HEADER = struct.Struct("<IIdd")  # n_queries, kk, queue_wait, compute


def _pack_scan_request(
    queries: np.ndarray,
    k: int,
    thresholds: Optional[np.ndarray],
    t_sent: float,
    origin: str,
) -> bytes:
    origin_bytes = origin.encode("utf-8")
    parts = [
        _SCAN_MAGIC,
        _SCAN_HEADER.pack(
            queries.shape[0], queries.shape[1], k, t_sent,
            int(thresholds is not None), len(origin_bytes),
        ),
        np.ascontiguousarray(queries, dtype=np.uint64).tobytes(),
    ]
    if thresholds is not None:
        parts.append(
            np.ascontiguousarray(thresholds, dtype=np.float64).tobytes()
        )
    parts.append(origin_bytes)
    return b"".join(parts)


def _unpack_scan_request(buf: bytes):
    view = memoryview(buf)[len(_SCAN_MAGIC):]
    (n_queries, n_words, k, t_sent, has_thresholds, origin_len) = (
        _SCAN_HEADER.unpack_from(view, 0)
    )
    offset = _SCAN_HEADER.size
    q_bytes = n_queries * n_words * 8
    queries = np.frombuffer(
        view, dtype=np.uint64, count=n_queries * n_words, offset=offset
    ).reshape(n_queries, n_words)
    offset += q_bytes
    thresholds = None
    if has_thresholds:
        thresholds = np.frombuffer(
            view, dtype=np.float64, count=n_queries, offset=offset
        )
        offset += n_queries * 8
    origin = bytes(view[offset : offset + origin_len]).decode("utf-8")
    return queries, k, thresholds, t_sent, origin


def _pack_scan_reply(
    dists: np.ndarray,
    rows: np.ndarray,
    queue_wait: float,
    compute: float,
    delta,
) -> bytes:
    return b"".join(
        [
            _REPLY_MAGIC,
            _REPLY_HEADER.pack(
                dists.shape[0], dists.shape[1], queue_wait, compute
            ),
            np.ascontiguousarray(dists, dtype=np.uint32).tobytes(),
            np.ascontiguousarray(rows, dtype=np.int64).tobytes(),
            pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL),
        ]
    )


def _unpack_scan_reply(buf: bytes):
    view = memoryview(buf)[len(_REPLY_MAGIC):]
    n_queries, kk, queue_wait, compute = _REPLY_HEADER.unpack_from(view, 0)
    offset = _REPLY_HEADER.size
    # Copy out of the message buffer: the arrays outlive it (merge,
    # owners_of) and downstream masking writes into the distance matrix.
    dists = np.frombuffer(
        view, dtype=np.uint32, count=n_queries * kk, offset=offset
    ).reshape(n_queries, kk).copy()
    offset += n_queries * kk * 4
    rows = np.frombuffer(
        view, dtype=np.int64, count=n_queries * kk, offset=offset
    ).reshape(n_queries, kk).copy()
    offset += n_queries * kk * 8
    delta = pickle.loads(view[offset:])
    stats = {"queue_wait": queue_wait, "compute": compute}
    return dists, rows, stats, delta


# ----------------------------------------------------------------------
# Worker side (process backend)
# ----------------------------------------------------------------------
def _attach_shm(name: str):
    # The parent owns the blocks' lifetime — workers only ever close()
    # their maps.  Attaching must therefore NOT register the name with
    # the (shared) resource tracker: tracker messages from parent and
    # child interleave arbitrarily, so a child register racing a parent
    # unregister leaves phantom "leaked" names (bpo-38119).  Python 3.13
    # exposes this as ``track=False``; on older versions the register
    # call is suppressed for the duration of the attach.
    from multiprocessing import resource_tracker, shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _worker_main(conn, quiet: bool = False, metrics_enabled: bool = True) -> None:
    """Persistent worker loop: attach shards, answer sub-scans.

    ``quiet``/``metrics_enabled`` are the parent's logger and registry
    switches at spawn time — a spawn-mode worker re-imports everything,
    so without them it would re-enable banner logging the operator
    turned off and run its registry in the wrong state.

    Every message arrives through ``recv_bytes`` and is dispatched on a
    magic prefix: scan requests are fused binary frames
    (:func:`_pack_scan_request`) answered with one fused reply carrying
    the local top-k, queue-wait/compute stats, and this worker's
    registry delta (:func:`delta_snapshots`) — one round trip per batch.
    Anything else is a pickled control tuple:

    - ``("load", sketch_shm, owner_shm, n_rows, n_words, bounds,
      cap_rows)`` — attach the arena (allocated at ``cap_rows`` capacity
      so later deltas fit in place) and view the ``bounds`` row ranges;
      ack ``("ok",)``.
    - ``("delta", n_rows, bounds)`` — re-cut shard views over the
      already-attached arena after the parent wrote appended rows /
      tombstones directly into shared memory; ack ``("ok",)``.  No row
      bytes cross the pipe — that is the point.
    - ``("metrics",)`` — on-demand delta export; reply ``("ok", delta)``.
    - ``("info",)`` — reply ``("ok", {pid, name, quiet,
      metrics_enabled})`` (used by tests and ``parallel_info``).
    - ``("stop",)`` — exit.
    """
    _log.set_quiet(quiet)
    registry = _metrics.get_registry()
    registry.enabled = bool(metrics_enabled)
    # Worker-side instruments live here, not at module level, so the
    # parent process never registers zero-valued `scan.*` series.
    w_requests = registry.counter("scan.requests")
    w_rows = registry.counter("scan.rows")
    w_compute = registry.histogram("scan.compute_seconds")
    w_queue_wait = registry.histogram("scan.queue_wait_seconds")
    w_arena_loads = registry.counter("arena.loads")
    w_arena_deltas = registry.counter("arena.delta_loads")
    w_ooc_scans = registry.counter("outofcore.scans")
    w_ooc_rows = registry.counter("outofcore.rows_scanned")
    # Fork-mode workers inherit the parent registry's live values, so
    # export *deltas against this baseline* — a worker only ever ships
    # what it did itself.
    prev_snap = registry.snapshot()

    def _export_delta():
        nonlocal prev_snap
        cur = registry.snapshot()
        delta = _metrics.delta_snapshots(prev_snap, cur)
        prev_snap = cur
        return delta

    shms: list = []
    shards: List[Tuple[int, np.ndarray, np.ndarray]] = []
    arena_owners: Optional[np.ndarray] = None
    arena_sketches: Optional[np.ndarray] = None
    n_shard_rows = 0
    while True:
        try:
            buf = conn.recv_bytes()
        except (EOFError, OSError):
            break
        if buf[:4] == _SCAN_MAGIC:
            try:
                queries, k, thresholds, t_sent, origin = (
                    _unpack_scan_request(buf)
                )
                queue_wait = max(0.0, time.time() - t_sent)
                compute_started = time.perf_counter()
                dists, rows = _scan_shards(shards, queries, k, thresholds)
                compute = time.perf_counter() - compute_started
                w_requests.inc()
                w_rows.inc(n_shard_rows * queries.shape[0])
                w_compute.observe(compute)
                w_queue_wait.observe(queue_wait)
                if origin == "outofcore":
                    w_ooc_scans.inc()
                    w_ooc_rows.inc(n_shard_rows * queries.shape[0])
                conn.send_bytes(
                    _pack_scan_reply(
                        dists, rows, queue_wait, compute, _export_delta()
                    )
                )
            except Exception as exc:  # keep the loop alive; parent decides
                try:
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
                except (BrokenPipeError, OSError):
                    break
            continue
        try:
            msg = pickle.loads(buf)
        except Exception:
            try:
                conn.send(("err", "undecodable control message"))
            except (BrokenPipeError, OSError):
                break
            continue
        kind = msg[0]
        try:
            if kind == "stop":
                conn.send(("ok",))
                break
            elif kind == "load":
                (_, sketch_name, owner_name, n_rows, n_words, bounds,
                 cap_rows) = msg
                for shm in shms:
                    shm.close()
                shms = []
                shards = []
                arena_owners = None
                arena_sketches = None
                n_shard_rows = 0
                if n_rows:
                    sk_shm = _attach_shm(sketch_name)
                    ow_shm = _attach_shm(owner_name)
                    shms = [sk_shm, ow_shm]
                    # Map the whole capacity, not just the loaded rows:
                    # a later ("delta", ...) re-cuts shard views past
                    # n_rows without reattaching.
                    arena_sketches = np.ndarray(
                        (cap_rows, n_words), dtype=np.uint64, buffer=sk_shm.buf
                    )
                    arena_owners = np.ndarray(
                        (cap_rows,), dtype=np.int64, buffer=ow_shm.buf
                    )
                    shards = [
                        (start, arena_owners[start:stop],
                         arena_sketches[start:stop])
                        for start, stop in bounds
                    ]
                    n_shard_rows = sum(stop - start for start, stop in bounds)
                w_arena_loads.inc()
                conn.send(("ok",))
            elif kind == "delta":
                _, n_rows, bounds = msg
                if arena_owners is None or arena_sketches is None:
                    conn.send(("err", "delta before load"))
                    continue
                if n_rows > arena_owners.shape[0]:
                    conn.send(("err", "delta exceeds arena capacity"))
                    continue
                shards = [
                    (start, arena_owners[start:stop],
                     arena_sketches[start:stop])
                    for start, stop in bounds
                ]
                n_shard_rows = sum(stop - start for start, stop in bounds)
                w_arena_deltas.inc()
                conn.send(("ok",))
            elif kind == "metrics":
                conn.send(("ok", _export_delta()))
            elif kind == "info":
                conn.send(
                    (
                        "ok",
                        {
                            "pid": os.getpid(),
                            "name": multiprocessing.current_process().name,
                            "quiet": _log.is_quiet(),
                            "metrics_enabled": registry.enabled,
                        },
                    )
                )
            else:
                conn.send(("err", f"unknown message kind {kind!r}"))
        except Exception as exc:  # keep the loop alive; parent decides
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    for shm in shms:
        try:
            shm.close()
        except (OSError, BufferError):
            # A vanished map or an exported view must not mask the exit
            # path; anything else (a bug) is allowed to surface in the
            # worker's traceback.
            pass
    try:
        conn.close()
    except OSError:
        pass


def _scan_shards(
    shards: Sequence[Tuple[int, np.ndarray, np.ndarray]],
    queries: np.ndarray,
    k: int,
    thresholds: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic top-k over one worker's shards (both backends).

    Returns ``(dists, global_rows)``, each ``(n_queries, <=k)``.  Dead
    rows (owner < 0) — and, when ``thresholds`` is given, rows beyond
    the per-query threshold — are masked to the sentinel before
    selection, mirroring the serial scan's masking order.
    """
    n_queries = np.atleast_2d(queries).shape[0]
    parts_d: List[np.ndarray] = []
    parts_id: List[np.ndarray] = []
    for start, owners, sketches in shards:
        if sketches.shape[0] == 0:
            continue
        dists = hamming_many_to_many(queries, sketches)
        dead = owners < 0
        if dead.any():
            dists[:, dead] = _SENTINEL
        if thresholds is not None:
            dists[np.greater(dists, thresholds[:, None])] = _SENTINEL
        kk = min(k, sketches.shape[0])
        sel = select_k_smallest(dists, kk)
        parts_d.append(np.take_along_axis(dists, sel, axis=1))
        parts_id.append(np.asarray(sel, dtype=np.int64) + start)
    return _merge_topk(parts_d, parts_id, k, n_queries)


# ----------------------------------------------------------------------
# Parent side: process-backed pool
# ----------------------------------------------------------------------
class ParallelFilterPool:
    """Persistent worker-process pool over a shared-memory shard arena.

    Lifecycle: workers are spawned lazily on the first :meth:`load`;
    each ``load`` copies a consistent ``(owners, sketches)`` snapshot
    into fresh shared-memory blocks, reassigns shards, and retires the
    previous arena once every worker acked the switch.  :meth:`close`
    stops the workers and unlinks the arena; the pool is also a context
    manager.  All public methods are thread-safe.
    """

    backend = "process"

    def __init__(
        self,
        num_workers: Optional[int] = None,
        shard_rows: Optional[int] = None,
        start_method: Optional[str] = None,
        response_timeout: float = 60.0,
    ) -> None:
        cfg = ParallelConfig(num_workers=num_workers)
        self.num_workers = cfg.effective_workers()
        self.shard_rows = shard_rows
        self.response_timeout = response_timeout
        self._ctx = multiprocessing.get_context(
            _resolve_start_method(start_method)
        )
        self._lock = threading.RLock()
        self._workers: List[Tuple[object, object]] = []  # (process, conn)
        self._shm: List[object] = []
        self._epoch: Optional[object] = None
        self._loaded = False
        self._owners: Optional[np.ndarray] = None
        # Parent-side views over the live shm blocks ([:_cap_rows]); the
        # delta path writes appended rows and tombstones through them.
        self._sk_view: Optional[np.ndarray] = None
        self._ow_view: Optional[np.ndarray] = None
        self._cap_rows = 0
        self._n_rows = 0
        self._n_alive = 0
        self._n_shards = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._workers:
            return
        if self._closed:
            raise ParallelScanError("pool is closed", kind="closed")
        # Workers inherit the parent's operational switches at spawn
        # time (fork shares them for free; spawn re-imports and must be
        # told), so `--quiet` and `setparam metrics off` hold across the
        # whole process tree.
        quiet = _log.is_quiet()
        metrics_enabled = _metrics.get_registry().enabled
        for i in range(self.num_workers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, quiet, metrics_enabled),
                daemon=True,
                name=f"ferret-scan-{i}",
            )
            proc.start()
            child_conn.close()
            self._workers.append((proc, parent_conn))

    def _recv(self, conn, what: str):
        if not conn.poll(self.response_timeout):
            raise ParallelScanError(
                f"worker timed out on {what}", kind="timeout"
            )
        try:
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise ParallelScanError(
                f"worker died during {what}: {exc}", kind="crash"
            ) from exc
        if reply[0] != "ok":
            raise ParallelScanError(
                f"worker error during {what}: {reply[1]}", kind="protocol"
            )
        return reply

    def _recv_scan(self, conn):
        """One fused scan reply (or a pickled worker-error tuple)."""
        if not conn.poll(self.response_timeout):
            raise ParallelScanError("worker timed out on scan", kind="timeout")
        try:
            buf = conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise ParallelScanError(
                f"worker died during scan: {exc}", kind="crash"
            ) from exc
        if buf[:4] == _REPLY_MAGIC:
            return _unpack_scan_reply(buf)
        try:
            reply = pickle.loads(buf)
        except Exception as exc:
            raise ParallelScanError(
                f"undecodable scan reply: {exc}", kind="protocol"
            ) from exc
        raise ParallelScanError(
            f"worker error during scan: {reply[1] if len(reply) > 1 else reply}",
            kind="protocol",
        )

    def _send(self, conn, msg, what: str) -> None:
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ParallelScanError(
                f"worker died during {what}: {exc}", kind="crash"
            ) from exc

    def _send_bytes(self, conn, payload: bytes, what: str) -> None:
        try:
            conn.send_bytes(payload)
        except (BrokenPipeError, OSError) as exc:
            raise ParallelScanError(
                f"worker died during {what}: {exc}", kind="crash"
            ) from exc

    def load(
        self,
        owners: np.ndarray,
        sketches: np.ndarray,
        epoch: Optional[object] = None,
    ) -> None:
        """Copy a snapshot into a fresh arena and reshard the workers.

        ``epoch`` is an opaque staleness token (the segment store's
        mutation counter); :meth:`matches` compares against it so the
        engine can rebuild on insert/delete.
        """
        from multiprocessing import shared_memory

        owners = np.ascontiguousarray(owners, dtype=np.int64)
        sketches = np.ascontiguousarray(sketches, dtype=np.uint64)
        if sketches.ndim != 2 or owners.shape[0] != sketches.shape[0]:
            raise ValueError("owners and sketches must be parallel arrays")
        n_rows, n_words = sketches.shape
        with self._lock:
            if self._closed:
                raise ParallelScanError("pool is closed", kind="closed")
            old_shm = self._shm
            new_shm: List[object] = []
            sk_view: Optional[np.ndarray] = None
            ow_view: Optional[np.ndarray] = None
            cap_rows = 0
            n_shards = 0
            if n_rows:
                self._ensure_workers()
                # Over-allocate so later deltas append in place instead
                # of rebuilding the blocks (see _arena_capacity).
                cap_rows = _arena_capacity(n_rows)
                sk_shm = shared_memory.SharedMemory(
                    create=True, size=cap_rows * n_words * 8
                )
                ow_shm = shared_memory.SharedMemory(
                    create=True, size=cap_rows * 8
                )
                new_shm = [sk_shm, ow_shm]
                sk_view = np.ndarray(
                    (cap_rows, n_words), dtype=np.uint64, buffer=sk_shm.buf
                )
                ow_view = np.ndarray(
                    (cap_rows,), dtype=np.int64, buffer=ow_shm.buf
                )
                sk_view[:n_rows] = sketches
                ow_view[:n_rows] = owners
                ow_view[n_rows:] = -1
                bounds = shard_bounds(n_rows, self.num_workers, self.shard_rows)
                n_shards = sum(len(ranges) for ranges in bounds)
                try:
                    for (proc, conn), ranges in zip(self._workers, bounds):
                        self._send(
                            conn,
                            ("load", sk_shm.name, ow_shm.name, n_rows,
                             n_words, ranges, cap_rows),
                            "load",
                        )
                    for proc, conn in self._workers:
                        self._recv(conn, "load")
                except ParallelScanError:
                    self._release_shm(new_shm)
                    raise
            self._shm = new_shm
            self._sk_view = sk_view
            self._ow_view = ow_view
            self._cap_rows = cap_rows
            # Private owner copy (capacity-sized): owners_of must keep
            # working even while/after the shm blocks are retired.
            owners_priv = np.full(max(cap_rows, n_rows), -1, dtype=np.int64)
            owners_priv[:n_rows] = owners
            self._owners = owners_priv
            self._n_rows = n_rows
            self._n_alive = int((owners >= 0).sum())
            self._n_shards = n_shards
            self._epoch = epoch
            self._loaded = True
            self._release_shm(old_shm)
            _M_POOL_LOADS.inc()
            _M_POOL_ROWS.set(n_rows)

    def load_delta(
        self,
        new_owners: np.ndarray,
        new_sketches: np.ndarray,
        from_epoch: object,
        to_epoch: object,
        dead_rows: Optional[np.ndarray] = None,
        base_rows: Optional[int] = None,
    ) -> bool:
        """Apply an arena delta in place; returns ``True`` if applied.

        Appended rows and tombstones are written directly into the
        shared-memory blocks (no row bytes cross the pipe); each worker
        only receives a tiny ``("delta", n_rows, bounds)`` control
        message re-cutting its shard views.  Returns ``False`` — and
        leaves the pool untouched — when the delta cannot be applied
        (epoch mismatch, no arena, capacity overflow): the caller then
        falls back to a full :meth:`load`.  Infrastructure failures
        (dead worker, timeout) raise :class:`ParallelScanError` exactly
        like a full load would.
        """
        new_owners = np.ascontiguousarray(new_owners, dtype=np.int64)
        new_sketches = np.ascontiguousarray(new_sketches, dtype=np.uint64)
        if new_sketches.ndim != 2 or new_owners.shape[0] != new_sketches.shape[0]:
            raise ValueError("owners and sketches must be parallel arrays")
        n_new = new_owners.shape[0]
        with self._lock:
            if self._closed:
                raise ParallelScanError("pool is closed", kind="closed")
            if (
                not self._loaded
                or self._ow_view is None
                or self._sk_view is None
                or not self._workers
            ):
                return False
            if self._epoch != from_epoch:
                return False
            if base_rows is not None and base_rows != self._n_rows:
                return False
            if n_new and new_sketches.shape[1] != self._sk_view.shape[1]:
                return False
            n0 = self._n_rows
            new_n = n0 + n_new
            if new_n > self._cap_rows:
                return False
            dead = (
                np.asarray(dead_rows, dtype=np.int64)
                if dead_rows is not None
                else np.empty(0, dtype=np.int64)
            )
            if dead.size and (dead.min() < 0 or dead.max() >= n0):
                return False
            # The protocol lock guarantees no scan is in flight, so the
            # workers observe these writes only after acking the delta.
            if n_new:
                self._sk_view[n0:new_n] = new_sketches
                self._ow_view[n0:new_n] = new_owners
                self._owners[n0:new_n] = new_owners
            if dead.size:
                self._ow_view[dead] = -1
                self._owners[dead] = -1
            bounds = shard_bounds(new_n, self.num_workers, self.shard_rows)
            for (proc, conn), ranges in zip(self._workers, bounds):
                self._send(conn, ("delta", new_n, ranges), "delta load")
            for proc, conn in self._workers:
                self._recv(conn, "delta load")
            self._n_rows = new_n
            self._n_alive += int((new_owners >= 0).sum()) - int(dead.size)
            self._n_shards = sum(len(ranges) for ranges in bounds)
            self._epoch = to_epoch
            _M_DELTA_LOADS.inc()
            _M_POOL_ROWS.set(new_n)
            return True

    @staticmethod
    def _release_shm(blocks) -> None:
        for shm in blocks:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
            except (OSError, BufferError):
                # Already-unlinked blocks and still-exported buffer views
                # are expected during teardown races; count them instead
                # of hiding every exception type.
                _M_ERR_SHM_RELEASE.inc()

    def matches(self, epoch: object) -> bool:
        """True when the arena was loaded from exactly this epoch."""
        with self._lock:
            return self._loaded and self._epoch == epoch

    @property
    def loaded_epoch(self) -> Optional[object]:
        with self._lock:
            return self._epoch if self._loaded else None

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_alive(self) -> int:
        return self._n_alive

    @property
    def n_shards(self) -> int:
        """Shards in the loaded arena (dispatch_round_trips' upper bound
        is one message per *worker*, which never exceeds this)."""
        return self._n_shards

    def owners_of(self, rows: np.ndarray) -> np.ndarray:
        """Owner ids of global row numbers (parent-side lookup)."""
        if self._owners is None:
            raise ParallelScanError("pool has no arena loaded", kind="state")
        return self._owners[rows]

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for proc, conn in self._workers:
                try:
                    conn.send(("stop",))
                except OSError:
                    # Dead worker / closed pipe: join+terminate below
                    # still reaps it.
                    _M_ERR_POOL_CLOSE.inc()
            for proc, conn in self._workers:
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
                try:
                    conn.close()
                except OSError:
                    _M_ERR_POOL_CLOSE.inc()
            self._workers = []
            # Drop the exported views before unlinking, or the buffer
            # protocol keeps the mapping alive and close() raises.
            self._sk_view = None
            self._ow_view = None
            self._release_shm(self._shm)
            self._shm = []
            self._loaded = False

    def __enter__(self) -> "ParallelFilterPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; engine/system call close()
        try:
            self.close()
        except Exception:
            pass

    # -- cross-process telemetry ----------------------------------------
    def _fold_delta(self, worker_index: int, delta) -> None:
        """Fold one worker's registry delta into the parent registry as
        ``worker.<i>.*`` plus the merged ``workers.*`` roll-up.  Both
        merges are additive over deltas, so the roll-up equals the sum
        of the per-worker series regardless of arrival order."""
        if not delta:
            return
        registry = _metrics.get_registry()
        try:
            registry.merge_snapshot(delta, prefix=f"worker.{worker_index}.")
            registry.merge_snapshot(delta, prefix="workers.")
        except ValueError:
            # A type/bounds conflict in telemetry must never fail the
            # scan that carried it.
            _M_ERR_METRICS_MERGE.inc()

    def fetch_worker_metrics(self) -> int:
        """On-demand metric pull: ask every worker for its registry
        delta and fold the results.  Returns the number of workers
        polled (0 when the pool has never spawned).  The `metrics` and
        `stat` server commands call this so a dump reflects worker
        activity even between scans."""
        with self._lock:
            if self._closed or not self._workers:
                return 0
            for proc, conn in self._workers:
                self._send(conn, ("metrics",), "metrics")
            deltas = []
            for proc, conn in self._workers:
                reply = self._recv(conn, "metrics")
                deltas.append(reply[1])
        for i, delta in enumerate(deltas):
            self._fold_delta(i, delta)
        return len(deltas)

    def worker_info(self) -> List[Dict[str, object]]:
        """Per-worker runtime state (pid, process name, quiet flag,
        metrics switch) straight from each worker process."""
        with self._lock:
            if self._closed or not self._workers:
                return []
            for proc, conn in self._workers:
                self._send(conn, ("info",), "info")
            return [dict(self._recv(conn, "info")[1])
                    for proc, conn in self._workers]

    # -- scanning -------------------------------------------------------
    def scan_topk(
        self,
        queries: np.ndarray,
        k: int,
        thresholds: Optional[np.ndarray] = None,
        origin: str = "filter",
        trace=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Global deterministic top-k rows per query sketch.

        ``queries`` is ``(n_queries, n_words)``; returns
        ``(dists, global_rows)`` of shape ``(n_queries, <=k)``.  When
        ``thresholds`` (one per query row) is given, rows beyond the
        threshold are masked *before* selection — the out-of-core scan's
        semantics; the in-memory filter thresholds after selection
        instead and passes ``None`` here.  Entries may include masked
        sentinel distances when fewer than ``k`` rows qualify; callers
        filter on the sentinel / owner sign.

        The whole batch travels to each worker as ONE fused binary
        message and comes back as one fused reply — the dispatch cost of
        a batch is ``num_workers`` round trips total, booked under
        ``parallel.dispatch_round_trips``, regardless of how many
        queries the batch stacks.

        ``origin`` labels the request for worker-side accounting (the
        out-of-core store passes ``"outofcore"`` so workers count
        ``outofcore.scans``).  ``trace``, when given a
        :class:`~repro.observability.tracing.QueryTrace`, gains one
        ``worker.<i>`` child span per worker splitting that worker's
        round trip into queue wait, compute, and reply serialization.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.uint64))
        if k <= 0:
            raise ValueError("k must be positive")
        if thresholds is not None:
            thresholds = np.asarray(thresholds, dtype=np.float64)
            if thresholds.shape[0] != queries.shape[0]:
                raise ValueError("need one threshold per query row")
        started = time.perf_counter()
        deltas: List[Tuple[int, object]] = []
        with self._lock:
            if self._closed:
                raise ParallelScanError("pool is closed", kind="closed")
            if not self._loaded:
                raise ParallelScanError(
                    "pool has no arena loaded", kind="state"
                )
            n_queries = queries.shape[0]
            if self._n_rows == 0:
                return (
                    np.empty((n_queries, 0), dtype=np.uint32),
                    np.empty((n_queries, 0), dtype=np.int64),
                )
            # time.time() crosses the process boundary (same host), so
            # workers can subtract it for queue wait; perf_counter does
            # not and stays parent-side.
            request = _pack_scan_request(
                queries, k, thresholds, time.time(), origin
            )
            for proc, conn in self._workers:
                self._send_bytes(conn, request, "scan")
            dispatched = time.perf_counter()
            parts_d: List[np.ndarray] = []
            parts_id: List[np.ndarray] = []
            wait_started = time.perf_counter()
            for i, (proc, conn) in enumerate(self._workers):
                d, rows, stats, delta = self._recv_scan(conn)
                deltas.append((i, delta))
                if trace is not None:
                    round_trip = time.perf_counter() - dispatched
                    queue_wait = float(stats.get("queue_wait", 0.0))
                    compute = float(stats.get("compute", 0.0))
                    trace.add_span(
                        f"worker.{i}",
                        queue_wait=queue_wait,
                        compute=compute,
                        reply=max(0.0, round_trip - queue_wait - compute),
                    )
                if d.shape[1]:
                    parts_d.append(d)
                    parts_id.append(rows)
            _M_POOL_WAIT_SECONDS.observe(time.perf_counter() - wait_started)
            _M_POOL_ROUND_TRIPS.inc(len(self._workers))
            _M_DISPATCH_ROUND_TRIPS.inc(len(self._workers))
        for i, delta in deltas:
            self._fold_delta(i, delta)
        _M_POOL_SCANS.inc()
        result = _merge_topk(parts_d, parts_id, k, n_queries)
        _M_POOL_SCAN_SECONDS.observe(time.perf_counter() - started)
        return result


# ----------------------------------------------------------------------
# Parent side: thread-backed pool
# ----------------------------------------------------------------------
class ThreadFilterPool:
    """Worker-*thread* pool sharing the arena zero-copy.

    Same contract and same deterministic results as
    :class:`ParallelFilterPool` (identical :func:`shard_bounds`
    geometry, identical :func:`_scan_shards` per worker, identical
    merge), but the arena is plain in-process numpy memory: no
    ``shared_memory`` blocks, no pickling, no pipes.  Worth it because
    the Hamming kernel's ``np.bitwise_count`` popcount releases the GIL
    (:func:`hamming_kernel_releases_gil`), so per-shard scans genuinely
    run on multiple cores.

    :meth:`load` *copies* the snapshot arrays once — the segment store
    compacts and tombstones its internal arrays in place, and the pool's
    epoch tag is only meaningful if the arena content is frozen at load
    time (this also keeps thread results bit-identical to the process
    pool, whose shared-memory copy freezes the same way).

    Teardown under load is safe: :meth:`close` drains in-flight scans
    (they only read the frozen arrays) and subsequent calls raise
    :class:`ParallelScanError` with ``kind="closed"``.
    """

    backend = "thread"

    def __init__(
        self,
        num_workers: Optional[int] = None,
        shard_rows: Optional[int] = None,
        start_method: Optional[str] = None,  # accepted for API parity
        response_timeout: float = 60.0,
    ) -> None:
        cfg = ParallelConfig(num_workers=num_workers)
        self.num_workers = cfg.effective_workers()
        self.shard_rows = shard_rows
        self.response_timeout = response_timeout
        self._lock = threading.RLock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._shards: List[List[Tuple[int, np.ndarray, np.ndarray]]] = []
        self._epoch: Optional[object] = None
        self._loaded = False
        self._owners: Optional[np.ndarray] = None
        # Capacity-sized backing arrays; _owners is their [:n_rows] view.
        self._sketch_arr: Optional[np.ndarray] = None
        self._owner_arr: Optional[np.ndarray] = None
        self._cap_rows = 0
        self._n_rows = 0
        self._n_alive = 0
        self._n_shards = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            if self._closed:
                raise ParallelScanError("pool is closed", kind="closed")
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="ferret-scan-t",
            )
        return self._executor

    def load(
        self,
        owners: np.ndarray,
        sketches: np.ndarray,
        epoch: Optional[object] = None,
    ) -> None:
        """Freeze a snapshot copy and cut it into per-worker shard views.

        The copy lands in capacity-sized arrays (see
        :func:`_arena_capacity`) so :meth:`load_delta` can append rows
        in place without reallocating or re-freezing the loaded prefix.
        """
        owners = np.asarray(owners, dtype=np.int64)
        sketches = np.asarray(sketches, dtype=np.uint64)
        if sketches.ndim != 2 or owners.shape[0] != sketches.shape[0]:
            raise ValueError("owners and sketches must be parallel arrays")
        n_rows = sketches.shape[0]
        cap_rows = _arena_capacity(n_rows)
        sketch_arr = np.empty((cap_rows, sketches.shape[1]), dtype=np.uint64)
        sketch_arr[:n_rows] = sketches
        owner_arr = np.full(cap_rows, -1, dtype=np.int64)
        owner_arr[:n_rows] = owners
        bounds = shard_bounds(n_rows, self.num_workers, self.shard_rows)
        per_worker = [
            [(start, owner_arr[start:stop], sketch_arr[start:stop])
             for start, stop in ranges]
            for ranges in bounds
        ]
        with self._lock:
            if self._closed:
                raise ParallelScanError("pool is closed", kind="closed")
            if n_rows:
                self._ensure_executor()
            self._shards = per_worker
            self._sketch_arr = sketch_arr
            self._owner_arr = owner_arr
            self._cap_rows = cap_rows
            self._owners = owner_arr[:n_rows]
            self._n_rows = n_rows
            self._n_alive = int((owners >= 0).sum())
            self._n_shards = sum(len(ranges) for ranges in bounds)
            self._epoch = epoch
            self._loaded = True
            _M_POOL_LOADS.inc()
            _M_POOL_ROWS.set(n_rows)

    def load_delta(
        self,
        new_owners: np.ndarray,
        new_sketches: np.ndarray,
        from_epoch: object,
        to_epoch: object,
        dead_rows: Optional[np.ndarray] = None,
        base_rows: Optional[int] = None,
    ) -> bool:
        """Apply an arena delta in place; returns ``True`` if applied.

        Only the appended chunk is written (and re-frozen via fresh
        shard views); the loaded prefix is untouched.  Tombstones below
        the base are applied onto a copy-on-write owner array so scans
        already in flight — which captured views of the *old* array —
        never observe a torn tombstone.  Returns ``False`` and leaves
        the pool untouched when the delta cannot be applied (epoch
        mismatch, no arena, capacity overflow); the caller then falls
        back to a full :meth:`load`.
        """
        new_owners = np.ascontiguousarray(new_owners, dtype=np.int64)
        new_sketches = np.ascontiguousarray(new_sketches, dtype=np.uint64)
        if new_sketches.ndim != 2 or new_owners.shape[0] != new_sketches.shape[0]:
            raise ValueError("owners and sketches must be parallel arrays")
        n_new = new_owners.shape[0]
        with self._lock:
            if self._closed:
                raise ParallelScanError("pool is closed", kind="closed")
            if (
                not self._loaded
                or self._owner_arr is None
                or self._sketch_arr is None
            ):
                return False
            if self._epoch != from_epoch:
                return False
            if base_rows is not None and base_rows != self._n_rows:
                return False
            if n_new and new_sketches.shape[1] != self._sketch_arr.shape[1]:
                return False
            n0 = self._n_rows
            new_n = n0 + n_new
            if new_n > self._cap_rows:
                return False
            dead = (
                np.asarray(dead_rows, dtype=np.int64)
                if dead_rows is not None
                else np.empty(0, dtype=np.int64)
            )
            if dead.size and (dead.min() < 0 or dead.max() >= n0):
                return False
            if n_new:
                # Rows past n0 are invisible to in-flight scans (their
                # shard views stop at the old bounds), so writing them
                # into the shared sketch/owner arrays is safe.
                self._sketch_arr[n0:new_n] = new_sketches
                self._owner_arr[n0:new_n] = new_owners
            owner_arr = self._owner_arr
            if dead.size:
                # Copy-on-write: tombstones land below n0, inside the
                # row ranges in-flight scans are reading.
                owner_arr = self._owner_arr.copy()
                owner_arr[dead] = -1
                self._owner_arr = owner_arr
            if new_n:
                self._ensure_executor()
            bounds = shard_bounds(new_n, self.num_workers, self.shard_rows)
            self._shards = [
                [(start, owner_arr[start:stop], self._sketch_arr[start:stop])
                 for start, stop in ranges]
                for ranges in bounds
            ]
            self._owners = owner_arr[:new_n]
            self._n_rows = new_n
            self._n_alive += int((new_owners >= 0).sum()) - int(dead.size)
            self._n_shards = sum(len(ranges) for ranges in bounds)
            self._epoch = to_epoch
            _M_DELTA_LOADS.inc()
            _M_POOL_ROWS.set(new_n)
            return True

    def matches(self, epoch: object) -> bool:
        """True when the arena was loaded from exactly this epoch."""
        with self._lock:
            return self._loaded and self._epoch == epoch

    @property
    def loaded_epoch(self) -> Optional[object]:
        with self._lock:
            return self._epoch if self._loaded else None

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_alive(self) -> int:
        return self._n_alive

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def owners_of(self, rows: np.ndarray) -> np.ndarray:
        """Owner ids of global row numbers."""
        owners = self._owners
        if owners is None:
            raise ParallelScanError("pool has no arena loaded", kind="state")
        return owners[rows]

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
            self._shards = []
            self._loaded = False
        if executor is not None:
            # Outside the lock: in-flight scans hold references to the
            # frozen arrays and finish normally; waiting here makes
            # close() a clean barrier even under concurrent load.
            executor.shutdown(wait=True)

    def __enter__(self) -> "ThreadFilterPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; engine/system call close()
        try:
            self.close()
        except Exception:
            pass

    # -- telemetry parity ------------------------------------------------
    def fetch_worker_metrics(self) -> int:
        """Threads share the parent registry — nothing to pull."""
        return 0

    def worker_info(self) -> List[Dict[str, object]]:
        """Per-worker runtime state (all workers share this process)."""
        with self._lock:
            if self._closed:
                return []
            return [
                {
                    "pid": os.getpid(),
                    "name": f"ferret-scan-t-{i}",
                    "quiet": _log.is_quiet(),
                    "metrics_enabled": _metrics.get_registry().enabled,
                }
                for i in range(self.num_workers)
            ]

    # -- scanning -------------------------------------------------------
    def scan_topk(
        self,
        queries: np.ndarray,
        k: int,
        thresholds: Optional[np.ndarray] = None,
        origin: str = "filter",
        trace=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Global deterministic top-k rows per query sketch.

        Same semantics as :meth:`ParallelFilterPool.scan_topk`.  The
        arena snapshot is read under the lock but the shard scans run
        *outside* it — concurrent callers and a concurrent :meth:`load`
        are safe because each scan works on the frozen arrays it
        captured.  No dispatch round trips are booked: thread handoff is
        not IPC.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.uint64))
        if k <= 0:
            raise ValueError("k must be positive")
        if thresholds is not None:
            thresholds = np.asarray(thresholds, dtype=np.float64)
            if thresholds.shape[0] != queries.shape[0]:
                raise ValueError("need one threshold per query row")
        started = time.perf_counter()
        with self._lock:
            if self._closed:
                raise ParallelScanError("pool is closed", kind="closed")
            if not self._loaded:
                raise ParallelScanError(
                    "pool has no arena loaded", kind="state"
                )
            n_queries = queries.shape[0]
            if self._n_rows == 0:
                return (
                    np.empty((n_queries, 0), dtype=np.uint32),
                    np.empty((n_queries, 0), dtype=np.int64),
                )
            executor = self._ensure_executor()
            shard_lists = [s for s in self._shards if s]
        try:
            futures = [
                executor.submit(_scan_shards, shards, queries, k, thresholds)
                for shards in shard_lists
            ]
        except RuntimeError as exc:  # shutdown raced the submit
            raise ParallelScanError(
                f"pool is closed: {exc}", kind="closed"
            ) from exc
        parts_d: List[np.ndarray] = []
        parts_id: List[np.ndarray] = []
        wait_started = time.perf_counter()
        for i, future in enumerate(futures):
            try:
                d, rows = future.result(timeout=self.response_timeout)
            except _FutureTimeout as exc:
                raise ParallelScanError(
                    "worker timed out on scan", kind="timeout"
                ) from exc
            if trace is not None:
                trace.add_span(
                    f"worker.{i}",
                    seconds=time.perf_counter() - wait_started,
                )
            if d.shape[1]:
                parts_d.append(d)
                parts_id.append(rows)
        _M_POOL_WAIT_SECONDS.observe(time.perf_counter() - wait_started)
        _M_POOL_SCANS.inc()
        result = _merge_topk(parts_d, parts_id, k, n_queries)
        _M_POOL_SCAN_SECONDS.observe(time.perf_counter() - started)
        return result


#: Either pool implementation — they share one duck-typed contract
#: (``load`` / ``scan_topk`` / ``matches`` / ``owners_of`` / ``close``).
FilterPool = Union[ParallelFilterPool, ThreadFilterPool]


def make_pool(
    backend: str,
    num_workers: Optional[int] = None,
    shard_rows: Optional[int] = None,
    start_method: Optional[str] = None,
    response_timeout: float = 60.0,
) -> FilterPool:
    """Construct the pool implementation for a resolved backend name."""
    if backend == "thread":
        cls = ThreadFilterPool
    elif backend == "process":
        cls = ParallelFilterPool
    else:
        raise ValueError(
            f"no pool for backend {backend!r} (resolve 'auto' through "
            f"choose_backend first; 'serial' needs no pool)"
        )
    return cls(
        num_workers=num_workers,
        shard_rows=shard_rows,
        start_method=start_method,
        response_timeout=response_timeout,
    )


# ----------------------------------------------------------------------
# Filtering-unit entry points (mirror the serial functions)
# ----------------------------------------------------------------------
def parallel_filter_candidates(
    queries: Sequence[ObjectSignature],
    query_sketches_list: Sequence[np.ndarray],
    params: FilterParams,
    n_bits: int,
    pool: FilterPool,
    trace=None,
) -> List[Set[int]]:
    """Candidate sets for a batch of queries via a shard pool.

    Equivalent to :func:`~repro.core.filtering.sketch_filter_many` run
    against the snapshot the pool's arena was loaded from: all queries'
    top-``r`` rows go out as one fused scan request, the per-shard top-k
    lists are merged deterministically, and thresholding + owner dedup
    run parent-side exactly like the serial selection.  ``pool`` may be
    either backend.  ``trace`` forwards to the pool's ``scan_topk`` for
    per-worker child spans.
    """
    queries = list(queries)
    if not queries:
        return []
    if pool.n_rows == 0 or pool.n_alive == 0:
        return [set() for _ in queries]
    tops, stacked, thresholds = _stack_query_rows(
        queries, query_sketches_list, params, n_bits
    )
    k = min(params.candidates_per_segment, pool.n_alive)
    dists, rows = pool.scan_topk(stacked, k, trace=trace)
    owners = pool.owners_of(rows)
    if thresholds is not None:
        within = dists <= thresholds[:, None]
    else:
        within = dists < _SENTINEL
    results: List[Set[int]] = []
    offset = 0
    for top in tops:
        span = slice(offset, offset + len(top))
        offset += len(top)
        hit_owners = owners[span][within[span]]
        hit_owners = hit_owners[hit_owners >= 0]
        results.append(set(int(o) for o in np.unique(hit_owners)))
    return results


def parallel_sketch_filter(
    query: ObjectSignature,
    query_sketches: np.ndarray,
    params: FilterParams,
    n_bits: int,
    pool: FilterPool,
) -> Set[int]:
    """Single-query candidate set via a shard pool (sketch path)."""
    return parallel_filter_candidates(
        [query], [query_sketches], params, n_bits, pool
    )[0]


def parallel_sketch_filter_many(
    queries: Sequence[ObjectSignature],
    query_sketches_list: Sequence[np.ndarray],
    params: FilterParams,
    n_bits: int,
    pool: FilterPool,
) -> List[Set[int]]:
    """Alias mirroring :func:`sketch_filter_many`'s name."""
    return parallel_filter_candidates(
        queries, query_sketches_list, params, n_bits, pool
    )


# ----------------------------------------------------------------------
# Query-result cache
# ----------------------------------------------------------------------
class QueryResultCache:
    """Bounded LRU cache of scan results, invalidated by mutation epoch.

    Entries are tagged with the single epoch the whole cache is valid
    for; the first access at a different epoch clears everything (any
    insert/delete/compaction may change any candidate set).  Real query
    streams are heavily skewed, so even a small capacity absorbs most
    repeats.  Thread-safe; a ``max_entries`` of 0 disables the cache.

    ``metrics_prefix`` names the registry series this instance books its
    hit/miss/eviction/invalidation counters under — ``query_cache`` for
    the engine's filter cache (the default), ``cluster.cache`` for the
    coordinator's result cache.  The epoch token is opaque: the
    coordinator passes a ``(write_epoch, topology_epoch)`` tuple where
    the engine passes the store's integer mutation counter.
    """

    def __init__(
        self, max_entries: int = 256, metrics_prefix: str = "query_cache"
    ) -> None:
        self.max_entries = max(0, int(max_entries))
        self._lock = threading.Lock()
        self._entries: "OrderedDict" = OrderedDict()
        self._epoch: Optional[object] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._m_hits = _metrics.counter(f"{metrics_prefix}.hits")
        self._m_misses = _metrics.counter(f"{metrics_prefix}.misses")
        self._m_evictions = _metrics.counter(f"{metrics_prefix}.evictions")
        self._m_invalidations = _metrics.counter(
            f"{metrics_prefix}.invalidations"
        )

    def _sync_epoch(self, epoch: object) -> None:
        if self._epoch != epoch:
            if self._entries:
                self.invalidations += 1
                self._m_invalidations.inc()
            self._entries.clear()
            self._epoch = epoch

    def lookup(self, epoch: object, key: object):
        """Cached value for ``key`` at ``epoch``, or ``None``."""
        if self.max_entries == 0 or key is None:
            return None
        with self._lock:
            self._sync_epoch(epoch)
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._m_hits.inc()
            return value

    def store(self, epoch: object, key: object, value) -> None:
        if self.max_entries == 0 or key is None:
            return
        with self._lock:
            self._sync_epoch(epoch)
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._m_evictions.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
