"""Sharded shared-memory parallel filtering scan.

The filtering unit streams over *all* database segment sketches per
query (section 4.1.1); the batched kernel made that scan vector-wide,
but the GIL still pins it to one core.  This module fans the scan out
over a persistent pool of worker *processes*:

- The consolidated ``(n_rows, n_words)`` sketch matrix and its owner
  array are copied once into ``multiprocessing.shared_memory`` blocks
  (the *arena*).  Workers map zero-copy views of their row shards, so a
  query dispatch pickles only the handful of query sketch rows — never
  the arena.
- Rows are cut into contiguous shards of ``shard_rows`` rows, assigned
  round-robin to workers.  Each worker answers a scan request with its
  shards' deterministic local top-k ``(distance, global_row)`` pairs.
- The parent merges the per-shard lists with the same deterministic
  smallest-row-wins selection rule the serial scan uses
  (:func:`~repro.core.filtering.select_k_smallest`), which makes the
  merged candidate sets *identical* to the single-process paths — the
  per-shard top-k provably contains every globally selected row.

Staleness is tracked by the segment store's mutation epoch: the pool
records the epoch its arena was loaded from, and the engine reloads
(reshards) when they diverge.  On any pool failure the engine falls
back to the serial scan and keeps answering queries.

A bounded LRU :class:`QueryResultCache` (also epoch-invalidated) sits
in front of the scan so repeated queries of a skewed stream skip it
entirely.

See docs/PERFORMANCE.md for the shard layout, pool lifecycle, and
tuning knobs.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import multiprocessing
import numpy as np

from ..observability import log as _log
from ..observability import metrics as _metrics
from .bitvector import hamming_many_to_many
from .filtering import (
    FilterParams,
    _segment_thresholds,
    select_k_smallest,
)
from .types import ObjectSignature

__all__ = [
    "ParallelConfig",
    "ParallelFilterPool",
    "ParallelScanError",
    "QueryResultCache",
    "parallel_filter_candidates",
    "parallel_sketch_filter",
    "parallel_sketch_filter_many",
]

# Masking value for dead / over-threshold rows inside workers: above any
# real Hamming distance, below no distance, and shared with the merge so
# padded entries sort last and never survive the final selection.
_SENTINEL = np.uint32(np.iinfo(np.uint32).max)

# Parent-side pool/cache telemetry (see docs/OBSERVABILITY.md).  Handles
# are created once at import; MetricsRegistry.reset() zeroes them in
# place so they stay valid across test resets.
_M_POOL_SCANS = _metrics.counter("parallel.scans")
_M_POOL_SCAN_SECONDS = _metrics.histogram("parallel.scan_seconds")
_M_POOL_WAIT_SECONDS = _metrics.histogram("parallel.shard_wait_seconds")
_M_POOL_ROUND_TRIPS = _metrics.counter("parallel.worker_round_trips")
_M_POOL_LOADS = _metrics.counter("parallel.arena_loads")
_M_POOL_ROWS = _metrics.gauge("parallel.arena_rows")
_M_CACHE_HITS = _metrics.counter("query_cache.hits")
_M_CACHE_MISSES = _metrics.counter("query_cache.misses")
_M_CACHE_EVICTIONS = _metrics.counter("query_cache.evictions")
_M_CACHE_INVALIDATIONS = _metrics.counter("query_cache.invalidations")
_M_ERR_SHM_RELEASE = _metrics.counter("errors_absorbed.parallel.shm_release")
_M_ERR_POOL_CLOSE = _metrics.counter("errors_absorbed.parallel.pool_close")
_M_ERR_METRICS_MERGE = _metrics.counter(
    "errors_absorbed.parallel.metrics_merge"
)


class ParallelScanError(RuntimeError):
    """The worker pool failed (dead worker, timeout, protocol error).

    Callers treat this as "pool unusable": the engine answers the query
    through the serial scan and rebuilds or disables the pool.
    """


@dataclass
class ParallelConfig:
    """Knobs of the parallel filtering scan.

    Parameters
    ----------
    num_workers:
        Worker process count; ``None`` means one per CPU.  A resolved
        count of 1 disables the pool (a single worker only adds IPC).
    shard_rows:
        Rows per contiguous shard; ``None`` splits the arena evenly into
        one shard per worker.
    min_segments:
        Auto-enable threshold: the engine only spins the pool up once
        the store holds at least this many live segments — below it the
        serial scan wins on dispatch overhead alone.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` when
        available (cheap startup) and ``spawn`` otherwise.
    response_timeout:
        Seconds to wait for a worker reply before declaring the pool
        broken.
    cache_entries:
        Capacity of the engine's query-result LRU cache (0 disables).
    enabled:
        Master switch; the server's ``setparam parallel`` toggles it.
    """

    num_workers: Optional[int] = None
    shard_rows: Optional[int] = None
    min_segments: int = 50_000
    start_method: Optional[str] = None
    response_timeout: float = 60.0
    cache_entries: int = 256
    enabled: bool = True

    def effective_workers(self) -> int:
        if self.num_workers is not None:
            return max(1, int(self.num_workers))
        return os.cpu_count() or 1


def _resolve_start_method(name: Optional[str]) -> str:
    available = multiprocessing.get_all_start_methods()
    if name is not None:
        if name not in available:
            raise ValueError(
                f"start method {name!r} unavailable (have {available})"
            )
        return name
    return "fork" if "fork" in available else "spawn"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _attach_shm(name: str):
    # The parent owns the blocks' lifetime — workers only ever close()
    # their maps.  Attaching must therefore NOT register the name with
    # the (shared) resource tracker: tracker messages from parent and
    # child interleave arbitrarily, so a child register racing a parent
    # unregister leaves phantom "leaked" names (bpo-38119).  Python 3.13
    # exposes this as ``track=False``; on older versions the register
    # call is suppressed for the duration of the attach.
    from multiprocessing import resource_tracker, shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _worker_main(conn, quiet: bool = False, metrics_enabled: bool = True) -> None:
    """Persistent worker loop: attach shards, answer sub-scans.

    ``quiet``/``metrics_enabled`` are the parent's logger and registry
    switches at spawn time — a spawn-mode worker re-imports everything,
    so without them it would re-enable banner logging the operator
    turned off and run its registry in the wrong state.

    Messages (tuples, first element is the kind):

    - ``("load", sketch_shm, owner_shm, n_rows, n_words, bounds)`` —
      attach the arena and view the ``bounds`` row ranges; ack ``("ok",)``.
    - ``("scan", queries, k, thresholds[, t_sent, origin])`` —
      deterministic local top-k over this worker's shards; reply
      ``("ok", dists, global_rows, span_stats, metrics_delta)``.
      ``span_stats`` is ``{"queue_wait": s, "compute": s}`` (wall-clock
      queue wait measured against the parent's ``t_sent``, comparable on
      the same host); ``metrics_delta`` is this worker's registry change
      since its last export (:func:`delta_snapshots`), piggybacked so
      every scan keeps the parent's ``worker.<i>.*`` series fresh.
    - ``("metrics",)`` — on-demand export; reply ``("ok", delta)``.
    - ``("info",)`` — reply ``("ok", {pid, name, quiet,
      metrics_enabled})`` (used by tests and ``parallel_info``).
    - ``("stop",)`` — exit.
    """
    _log.set_quiet(quiet)
    registry = _metrics.get_registry()
    registry.enabled = bool(metrics_enabled)
    # Worker-side instruments live here, not at module level, so the
    # parent process never registers zero-valued `scan.*` series.
    w_requests = registry.counter("scan.requests")
    w_rows = registry.counter("scan.rows")
    w_compute = registry.histogram("scan.compute_seconds")
    w_queue_wait = registry.histogram("scan.queue_wait_seconds")
    w_arena_loads = registry.counter("arena.loads")
    w_ooc_scans = registry.counter("outofcore.scans")
    w_ooc_rows = registry.counter("outofcore.rows_scanned")
    # Fork-mode workers inherit the parent registry's live values, so
    # export *deltas against this baseline* — a worker only ever ships
    # what it did itself.
    prev_snap = registry.snapshot()

    def _export_delta():
        nonlocal prev_snap
        cur = registry.snapshot()
        delta = _metrics.delta_snapshots(prev_snap, cur)
        prev_snap = cur
        return delta

    shms: list = []
    shards: List[Tuple[int, np.ndarray, np.ndarray]] = []
    n_shard_rows = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        try:
            if kind == "stop":
                conn.send(("ok",))
                break
            elif kind == "load":
                _, sketch_name, owner_name, n_rows, n_words, bounds = msg
                for shm in shms:
                    shm.close()
                shms = []
                shards = []
                n_shard_rows = 0
                if n_rows:
                    sk_shm = _attach_shm(sketch_name)
                    ow_shm = _attach_shm(owner_name)
                    shms = [sk_shm, ow_shm]
                    sketches = np.ndarray(
                        (n_rows, n_words), dtype=np.uint64, buffer=sk_shm.buf
                    )
                    owners = np.ndarray(
                        (n_rows,), dtype=np.int64, buffer=ow_shm.buf
                    )
                    shards = [
                        (start, owners[start:stop], sketches[start:stop])
                        for start, stop in bounds
                    ]
                    n_shard_rows = sum(stop - start for start, stop in bounds)
                w_arena_loads.inc()
                conn.send(("ok",))
            elif kind == "scan":
                _, queries, k, thresholds = msg[:4]
                t_sent = msg[4] if len(msg) > 4 else None
                origin = msg[5] if len(msg) > 5 else None
                queue_wait = (
                    max(0.0, time.time() - t_sent) if t_sent is not None else 0.0
                )
                compute_started = time.perf_counter()
                result = _scan_shards(shards, queries, k, thresholds)
                compute = time.perf_counter() - compute_started
                w_requests.inc()
                w_rows.inc(n_shard_rows * np.atleast_2d(queries).shape[0])
                w_compute.observe(compute)
                w_queue_wait.observe(queue_wait)
                if origin == "outofcore":
                    w_ooc_scans.inc()
                    w_ooc_rows.inc(
                        n_shard_rows * np.atleast_2d(queries).shape[0]
                    )
                stats = {"queue_wait": queue_wait, "compute": compute}
                conn.send(("ok",) + result + (stats, _export_delta()))
            elif kind == "metrics":
                conn.send(("ok", _export_delta()))
            elif kind == "info":
                conn.send(
                    (
                        "ok",
                        {
                            "pid": os.getpid(),
                            "name": multiprocessing.current_process().name,
                            "quiet": _log.is_quiet(),
                            "metrics_enabled": registry.enabled,
                        },
                    )
                )
            else:
                conn.send(("err", f"unknown message kind {kind!r}"))
        except Exception as exc:  # keep the loop alive; parent decides
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    for shm in shms:
        try:
            shm.close()
        except (OSError, BufferError):
            # A vanished map or an exported view must not mask the exit
            # path; anything else (a bug) is allowed to surface in the
            # worker's traceback.
            pass
    try:
        conn.close()
    except OSError:
        pass


def _scan_shards(
    shards: Sequence[Tuple[int, np.ndarray, np.ndarray]],
    queries: np.ndarray,
    k: int,
    thresholds: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic top-k over a worker's shards.

    Returns ``(dists, global_rows)``, each ``(n_queries, <=k)``.  Dead
    rows (owner < 0) — and, when ``thresholds`` is given, rows beyond
    the per-query threshold — are masked to the sentinel before
    selection, mirroring the serial scan's masking order.
    """
    n_queries = np.atleast_2d(queries).shape[0]
    parts_d: List[np.ndarray] = []
    parts_id: List[np.ndarray] = []
    for start, owners, sketches in shards:
        if sketches.shape[0] == 0:
            continue
        dists = hamming_many_to_many(queries, sketches)
        dead = owners < 0
        if dead.any():
            dists[:, dead] = _SENTINEL
        if thresholds is not None:
            dists[np.greater(dists, thresholds[:, None])] = _SENTINEL
        kk = min(k, sketches.shape[0])
        sel = select_k_smallest(dists, kk)
        parts_d.append(np.take_along_axis(dists, sel, axis=1))
        parts_id.append(np.asarray(sel, dtype=np.int64) + start)
    if not parts_d:
        empty = np.empty((n_queries, 0), dtype=np.uint32)
        return empty, np.empty((n_queries, 0), dtype=np.int64)
    if len(parts_d) == 1:
        return parts_d[0], parts_id[0]
    all_d = np.concatenate(parts_d, axis=1)
    all_id = np.concatenate(parts_id, axis=1)
    kk = min(k, all_d.shape[1])
    sel = select_k_smallest(all_d, kk, ids=all_id)
    return (
        np.take_along_axis(all_d, sel, axis=1),
        np.take_along_axis(all_id, sel, axis=1),
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ParallelFilterPool:
    """Persistent worker pool over a shared-memory shard arena.

    Lifecycle: workers are spawned lazily on the first :meth:`load`;
    each ``load`` copies a consistent ``(owners, sketches)`` snapshot
    into fresh shared-memory blocks, reassigns shards, and retires the
    previous arena once every worker acked the switch.  :meth:`close`
    stops the workers and unlinks the arena; the pool is also a context
    manager.  All public methods are thread-safe.
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        shard_rows: Optional[int] = None,
        start_method: Optional[str] = None,
        response_timeout: float = 60.0,
    ) -> None:
        cfg = ParallelConfig(num_workers=num_workers)
        self.num_workers = cfg.effective_workers()
        self.shard_rows = shard_rows
        self.response_timeout = response_timeout
        self._ctx = multiprocessing.get_context(
            _resolve_start_method(start_method)
        )
        self._lock = threading.RLock()
        self._workers: List[Tuple[object, object]] = []  # (process, conn)
        self._shm: List[object] = []
        self._epoch: Optional[object] = None
        self._loaded = False
        self._owners: Optional[np.ndarray] = None
        self._n_rows = 0
        self._n_alive = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._workers:
            return
        if self._closed:
            raise ParallelScanError("pool is closed")
        # Workers inherit the parent's operational switches at spawn
        # time (fork shares them for free; spawn re-imports and must be
        # told), so `--quiet` and `setparam metrics off` hold across the
        # whole process tree.
        quiet = _log.is_quiet()
        metrics_enabled = _metrics.get_registry().enabled
        for i in range(self.num_workers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, quiet, metrics_enabled),
                daemon=True,
                name=f"ferret-scan-{i}",
            )
            proc.start()
            child_conn.close()
            self._workers.append((proc, parent_conn))

    def _recv(self, conn, what: str):
        if not conn.poll(self.response_timeout):
            raise ParallelScanError(f"worker timed out on {what}")
        try:
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise ParallelScanError(f"worker died during {what}: {exc}") from exc
        if reply[0] != "ok":
            raise ParallelScanError(f"worker error during {what}: {reply[1]}")
        return reply

    def _send(self, conn, msg, what: str) -> None:
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ParallelScanError(f"worker died during {what}: {exc}") from exc

    def _shard_bounds(self, n_rows: int) -> List[List[Tuple[int, int]]]:
        """Per-worker lists of contiguous ``(start, stop)`` row ranges."""
        if self.shard_rows is not None and self.shard_rows > 0:
            rows_per_shard = self.shard_rows
        else:
            rows_per_shard = max(1, -(-n_rows // self.num_workers))
        per_worker: List[List[Tuple[int, int]]] = [
            [] for _ in range(self.num_workers)
        ]
        shard = 0
        for start in range(0, n_rows, rows_per_shard):
            stop = min(start + rows_per_shard, n_rows)
            per_worker[shard % self.num_workers].append((start, stop))
            shard += 1
        return per_worker

    def load(
        self,
        owners: np.ndarray,
        sketches: np.ndarray,
        epoch: Optional[object] = None,
    ) -> None:
        """Copy a snapshot into a fresh arena and reshard the workers.

        ``epoch`` is an opaque staleness token (the segment store's
        mutation counter); :meth:`matches` compares against it so the
        engine can rebuild on insert/delete.
        """
        from multiprocessing import shared_memory

        owners = np.ascontiguousarray(owners, dtype=np.int64)
        sketches = np.ascontiguousarray(sketches, dtype=np.uint64)
        if sketches.ndim != 2 or owners.shape[0] != sketches.shape[0]:
            raise ValueError("owners and sketches must be parallel arrays")
        n_rows, n_words = sketches.shape
        with self._lock:
            if self._closed:
                raise ParallelScanError("pool is closed")
            old_shm = self._shm
            new_shm: List[object] = []
            if n_rows:
                self._ensure_workers()
                sk_shm = shared_memory.SharedMemory(
                    create=True, size=sketches.nbytes
                )
                ow_shm = shared_memory.SharedMemory(
                    create=True, size=owners.nbytes
                )
                new_shm = [sk_shm, ow_shm]
                np.ndarray(
                    sketches.shape, dtype=np.uint64, buffer=sk_shm.buf
                )[...] = sketches
                np.ndarray(
                    owners.shape, dtype=np.int64, buffer=ow_shm.buf
                )[...] = owners
                bounds = self._shard_bounds(n_rows)
                try:
                    for (proc, conn), ranges in zip(self._workers, bounds):
                        self._send(
                            conn,
                            ("load", sk_shm.name, ow_shm.name, n_rows,
                             n_words, ranges),
                            "load",
                        )
                    for proc, conn in self._workers:
                        self._recv(conn, "load")
                except ParallelScanError:
                    self._release_shm(new_shm)
                    raise
            self._shm = new_shm
            self._owners = owners.copy()
            self._n_rows = n_rows
            self._n_alive = int((owners >= 0).sum())
            self._epoch = epoch
            self._loaded = True
            self._release_shm(old_shm)
            _M_POOL_LOADS.inc()
            _M_POOL_ROWS.set(n_rows)

    @staticmethod
    def _release_shm(blocks) -> None:
        for shm in blocks:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
            except (OSError, BufferError):
                # Already-unlinked blocks and still-exported buffer views
                # are expected during teardown races; count them instead
                # of hiding every exception type.
                _M_ERR_SHM_RELEASE.inc()

    def matches(self, epoch: object) -> bool:
        """True when the arena was loaded from exactly this epoch."""
        with self._lock:
            return self._loaded and self._epoch == epoch

    @property
    def loaded_epoch(self) -> Optional[object]:
        with self._lock:
            return self._epoch if self._loaded else None

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_alive(self) -> int:
        return self._n_alive

    def owners_of(self, rows: np.ndarray) -> np.ndarray:
        """Owner ids of global row numbers (parent-side lookup)."""
        if self._owners is None:
            raise ParallelScanError("pool has no arena loaded")
        return self._owners[rows]

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for proc, conn in self._workers:
                try:
                    conn.send(("stop",))
                except OSError:
                    # Dead worker / closed pipe: join+terminate below
                    # still reaps it.
                    _M_ERR_POOL_CLOSE.inc()
            for proc, conn in self._workers:
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
                try:
                    conn.close()
                except OSError:
                    _M_ERR_POOL_CLOSE.inc()
            self._workers = []
            self._release_shm(self._shm)
            self._shm = []
            self._loaded = False

    def __enter__(self) -> "ParallelFilterPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; engine/system call close()
        try:
            self.close()
        except Exception:
            pass

    # -- cross-process telemetry ----------------------------------------
    def _fold_delta(self, worker_index: int, delta) -> None:
        """Fold one worker's registry delta into the parent registry as
        ``worker.<i>.*`` plus the merged ``workers.*`` roll-up.  Both
        merges are additive over deltas, so the roll-up equals the sum
        of the per-worker series regardless of arrival order."""
        if not delta:
            return
        registry = _metrics.get_registry()
        try:
            registry.merge_snapshot(delta, prefix=f"worker.{worker_index}.")
            registry.merge_snapshot(delta, prefix="workers.")
        except ValueError:
            # A type/bounds conflict in telemetry must never fail the
            # scan that carried it.
            _M_ERR_METRICS_MERGE.inc()

    def fetch_worker_metrics(self) -> int:
        """On-demand metric pull: ask every worker for its registry
        delta and fold the results.  Returns the number of workers
        polled (0 when the pool has never spawned).  The `metrics` and
        `stat` server commands call this so a dump reflects worker
        activity even between scans."""
        with self._lock:
            if self._closed or not self._workers:
                return 0
            for proc, conn in self._workers:
                self._send(conn, ("metrics",), "metrics")
            deltas = []
            for proc, conn in self._workers:
                reply = self._recv(conn, "metrics")
                deltas.append(reply[1])
        for i, delta in enumerate(deltas):
            self._fold_delta(i, delta)
        return len(deltas)

    def worker_info(self) -> List[Dict[str, object]]:
        """Per-worker runtime state (pid, process name, quiet flag,
        metrics switch) straight from each worker process."""
        with self._lock:
            if self._closed or not self._workers:
                return []
            for proc, conn in self._workers:
                self._send(conn, ("info",), "info")
            return [dict(self._recv(conn, "info")[1])
                    for proc, conn in self._workers]

    # -- scanning -------------------------------------------------------
    def scan_topk(
        self,
        queries: np.ndarray,
        k: int,
        thresholds: Optional[np.ndarray] = None,
        origin: str = "filter",
        trace=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Global deterministic top-k rows per query sketch.

        ``queries`` is ``(n_queries, n_words)``; returns
        ``(dists, global_rows)`` of shape ``(n_queries, <=k)``.  When
        ``thresholds`` (one per query row) is given, rows beyond the
        threshold are masked *before* selection — the out-of-core scan's
        semantics; the in-memory filter thresholds after selection
        instead and passes ``None`` here.  Entries may include masked
        sentinel distances when fewer than ``k`` rows qualify; callers
        filter on the sentinel / owner sign.

        ``origin`` labels the request for worker-side accounting (the
        out-of-core store passes ``"outofcore"`` so workers count
        ``outofcore.scans``).  ``trace``, when given a
        :class:`~repro.observability.tracing.QueryTrace`, gains one
        ``worker.<i>`` child span per worker splitting that worker's
        round trip into queue wait, compute, and reply serialization.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.uint64))
        if k <= 0:
            raise ValueError("k must be positive")
        if thresholds is not None:
            thresholds = np.asarray(thresholds, dtype=np.float64)
            if thresholds.shape[0] != queries.shape[0]:
                raise ValueError("need one threshold per query row")
        started = time.perf_counter()
        deltas: List[Tuple[int, object]] = []
        with self._lock:
            if self._closed:
                raise ParallelScanError("pool is closed")
            if not self._loaded:
                raise ParallelScanError("pool has no arena loaded")
            n_queries = queries.shape[0]
            if self._n_rows == 0:
                return (
                    np.empty((n_queries, 0), dtype=np.uint32),
                    np.empty((n_queries, 0), dtype=np.int64),
                )
            # time.time() crosses the process boundary (same host), so
            # workers can subtract it for queue wait; perf_counter does
            # not and stays parent-side.
            dispatch = ("scan", queries, k, thresholds, time.time(), origin)
            for proc, conn in self._workers:
                self._send(conn, dispatch, "scan")
            dispatched = time.perf_counter()
            parts_d: List[np.ndarray] = []
            parts_id: List[np.ndarray] = []
            wait_started = time.perf_counter()
            for i, (proc, conn) in enumerate(self._workers):
                reply = self._recv(conn, "scan")
                d, rows = reply[1], reply[2]
                stats = reply[3] if len(reply) > 3 else None
                if len(reply) > 4:
                    deltas.append((i, reply[4]))
                if stats is not None and trace is not None:
                    round_trip = time.perf_counter() - dispatched
                    queue_wait = float(stats.get("queue_wait", 0.0))
                    compute = float(stats.get("compute", 0.0))
                    trace.add_span(
                        f"worker.{i}",
                        queue_wait=queue_wait,
                        compute=compute,
                        reply=max(0.0, round_trip - queue_wait - compute),
                    )
                if d.shape[1]:
                    parts_d.append(d)
                    parts_id.append(rows)
            _M_POOL_WAIT_SECONDS.observe(time.perf_counter() - wait_started)
            _M_POOL_ROUND_TRIPS.inc(len(self._workers))
        for i, delta in deltas:
            self._fold_delta(i, delta)
        _M_POOL_SCANS.inc()
        if not parts_d:
            _M_POOL_SCAN_SECONDS.observe(time.perf_counter() - started)
            return (
                np.empty((n_queries, 0), dtype=np.uint32),
                np.empty((n_queries, 0), dtype=np.int64),
            )
        all_d = np.concatenate(parts_d, axis=1)
        all_id = np.concatenate(parts_id, axis=1)
        kk = min(k, all_d.shape[1])
        sel = select_k_smallest(all_d, kk, ids=all_id)
        result = (
            np.take_along_axis(all_d, sel, axis=1),
            np.take_along_axis(all_id, sel, axis=1),
        )
        _M_POOL_SCAN_SECONDS.observe(time.perf_counter() - started)
        return result


# ----------------------------------------------------------------------
# Filtering-unit entry points (mirror the serial functions)
# ----------------------------------------------------------------------
def parallel_filter_candidates(
    queries: Sequence[ObjectSignature],
    query_sketches_list: Sequence[np.ndarray],
    params: FilterParams,
    n_bits: int,
    pool: ParallelFilterPool,
    trace=None,
) -> List[Set[int]]:
    """Candidate sets for a batch of queries via the shard pool.

    Equivalent to :func:`~repro.core.filtering.sketch_filter_many` run
    against the snapshot the pool's arena was loaded from: all queries'
    top-``r`` rows go out as one fused scan request, the per-shard top-k
    lists are merged deterministically, and thresholding + owner dedup
    run parent-side exactly like the serial selection.  ``trace``
    forwards to :meth:`ParallelFilterPool.scan_topk` for per-worker
    child spans.
    """
    queries = list(queries)
    if not queries:
        return []
    if pool.n_rows == 0 or pool.n_alive == 0:
        return [set() for _ in queries]
    tops = [q.top_segments(params.num_query_segments) for q in queries]
    stacked = np.concatenate(
        [qs[top] for qs, top in zip(query_sketches_list, tops)], axis=0
    )
    if params.threshold_fraction is not None:
        thresholds = np.concatenate(
            [
                _segment_thresholds(
                    q, top, params, np.full(len(top), float(n_bits))
                )
                for q, top in zip(queries, tops)
            ]
        )
    else:
        thresholds = None
    k = min(params.candidates_per_segment, pool.n_alive)
    dists, rows = pool.scan_topk(stacked, k, trace=trace)
    owners = pool.owners_of(rows)
    if thresholds is not None:
        within = dists <= thresholds[:, None]
    else:
        within = dists < _SENTINEL
    results: List[Set[int]] = []
    offset = 0
    for top in tops:
        span = slice(offset, offset + len(top))
        offset += len(top)
        hit_owners = owners[span][within[span]]
        hit_owners = hit_owners[hit_owners >= 0]
        results.append(set(int(o) for o in np.unique(hit_owners)))
    return results


def parallel_sketch_filter(
    query: ObjectSignature,
    query_sketches: np.ndarray,
    params: FilterParams,
    n_bits: int,
    pool: ParallelFilterPool,
) -> Set[int]:
    """Single-query candidate set via the shard pool (sketch path)."""
    return parallel_filter_candidates(
        [query], [query_sketches], params, n_bits, pool
    )[0]


def parallel_sketch_filter_many(
    queries: Sequence[ObjectSignature],
    query_sketches_list: Sequence[np.ndarray],
    params: FilterParams,
    n_bits: int,
    pool: ParallelFilterPool,
) -> List[Set[int]]:
    """Alias mirroring :func:`sketch_filter_many`'s name."""
    return parallel_filter_candidates(
        queries, query_sketches_list, params, n_bits, pool
    )


# ----------------------------------------------------------------------
# Query-result cache
# ----------------------------------------------------------------------
class QueryResultCache:
    """Bounded LRU cache of scan results, invalidated by mutation epoch.

    Entries are tagged with the single epoch the whole cache is valid
    for; the first access at a different epoch clears everything (any
    insert/delete/compaction may change any candidate set).  Real query
    streams are heavily skewed, so even a small capacity absorbs most
    repeats.  Thread-safe; a ``max_entries`` of 0 disables the cache.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max(0, int(max_entries))
        self._lock = threading.Lock()
        self._entries: "OrderedDict" = OrderedDict()
        self._epoch: Optional[object] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _sync_epoch(self, epoch: object) -> None:
        if self._epoch != epoch:
            if self._entries:
                self.invalidations += 1
                _M_CACHE_INVALIDATIONS.inc()
            self._entries.clear()
            self._epoch = epoch

    def lookup(self, epoch: object, key: object):
        """Cached value for ``key`` at ``epoch``, or ``None``."""
        if self.max_entries == 0 or key is None:
            return None
        with self._lock:
            self._sync_epoch(epoch)
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                _M_CACHE_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _M_CACHE_HITS.inc()
            return value

    def store(self, epoch: object, key: object, value) -> None:
        if self.max_entries == 0 or key is None:
            return
        with self._lock:
            self._sync_epoch(epoch)
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                _M_CACHE_EVICTIONS.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
