"""Core data types for the Ferret similarity search toolkit.

The paper (section 2) represents a feature-rich data object as a weighted
set of feature vectors::

    X = {<X_1, w(X_1)>, ..., <X_k, w(X_k)>}

where each ``X_i`` is a point in a D-dimensional space and the weights
describe the relative "importance" of each segment.  The C interface in
the paper calls this ``ObjectT``; here it is :class:`ObjectSignature`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FeatureMeta",
    "ObjectSignature",
    "Dataset",
    "normalize_weights",
    "meta_from_dataset",
]


def normalize_weights(weights: Sequence[float]) -> np.ndarray:
    """Return ``weights`` normalized to sum to 1.0.

    The paper requires segment weights of an object to add up to one
    (section 4.2.1).  Raises ``ValueError`` for empty, negative, or
    all-zero weights since none of those describe a valid segmentation.
    """
    arr = np.asarray(weights, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(arr < 0):
        raise ValueError("segment weights must be non-negative")
    total = float(arr.sum())
    if total <= 0.0:
        raise ValueError("segment weights must not all be zero")
    return arr / total


@dataclass(frozen=True)
class FeatureMeta:
    """Describes the feature space of one data type.

    The sketch construction unit (section 4.1.1) is initialized with the
    per-dimension minimum and maximum values and optional per-dimension
    weights; this class bundles those parameters.
    """

    dim: int
    min_values: np.ndarray
    max_values: np.ndarray
    weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        mins = np.asarray(self.min_values, dtype=np.float64)
        maxs = np.asarray(self.max_values, dtype=np.float64)
        object.__setattr__(self, "min_values", mins)
        object.__setattr__(self, "max_values", maxs)
        if mins.shape != (self.dim,) or maxs.shape != (self.dim,):
            raise ValueError(
                f"min/max must have shape ({self.dim},), got "
                f"{mins.shape} and {maxs.shape}"
            )
        if np.any(maxs < mins):
            raise ValueError("max_values must be >= min_values per dimension")
        if self.weights is not None:
            w = np.asarray(self.weights, dtype=np.float64)
            if w.shape != (self.dim,):
                raise ValueError(f"weights must have shape ({self.dim},)")
            if np.any(w < 0):
                raise ValueError("dimension weights must be non-negative")
            object.__setattr__(self, "weights", w)

    @classmethod
    def from_samples(
        cls, samples: np.ndarray, weights: Optional[np.ndarray] = None
    ) -> "FeatureMeta":
        """Derive the feature-space bounds from a sample matrix (rows = vectors)."""
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        return cls(
            dim=samples.shape[1],
            min_values=samples.min(axis=0),
            max_values=samples.max(axis=0),
            weights=weights,
        )

    @property
    def ranges(self) -> np.ndarray:
        """Per-dimension extent ``max - min``."""
        return self.max_values - self.min_values


class ObjectSignature:
    """A data object: a weighted set of feature vectors (the paper's ObjectT).

    Parameters
    ----------
    features:
        ``(k, D)`` array — one row per segment.
    weights:
        length-``k`` segment weights.  Normalized to sum to 1 unless
        ``normalize=False``.
    object_id:
        Optional stable identifier assigned by the engine/metadata layer.
    """

    __slots__ = ("object_id", "features", "weights")

    def __init__(
        self,
        features: np.ndarray,
        weights: Sequence[float],
        object_id: Optional[int] = None,
        normalize: bool = True,
    ) -> None:
        feats = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if feats.ndim != 2:
            raise ValueError("features must be a (k, D) matrix")
        w = (
            normalize_weights(weights)
            if normalize
            else np.asarray(weights, dtype=np.float64)
        )
        if w.shape[0] != feats.shape[0]:
            raise ValueError(
                f"got {feats.shape[0]} feature vectors but {w.shape[0]} weights"
            )
        self.features = feats
        self.weights = w
        self.object_id = object_id

    @property
    def num_segments(self) -> int:
        return self.features.shape[0]

    @property
    def dim(self) -> int:
        return self.features.shape[1]

    def segment(self, index: int) -> Tuple[np.ndarray, float]:
        """Return ``(feature_vector, weight)`` of one segment."""
        return self.features[index], float(self.weights[index])

    def top_segments(self, r: int) -> List[int]:
        """Indices of the ``r`` highest-weight segments, heaviest first.

        Used by the filtering unit: "our filtering algorithm selects r
        segments of Q with the highest weights" (section 4.1.1).
        """
        order = np.argsort(-self.weights, kind="stable")
        return [int(i) for i in order[: max(0, r)]]

    def __len__(self) -> int:
        return self.num_segments

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObjectSignature):
            return NotImplemented
        return (
            self.object_id == other.object_id
            and self.features.shape == other.features.shape
            and np.array_equal(self.features, other.features)
            and np.array_equal(self.weights, other.weights)
        )

    def __repr__(self) -> str:
        return (
            f"ObjectSignature(id={self.object_id}, segments={self.num_segments}, "
            f"dim={self.dim})"
        )


def meta_from_dataset(
    dataset: "Dataset",
    weights: Optional[np.ndarray] = None,
    margin: float = 0.05,
) -> FeatureMeta:
    """Calibrate sketch bounds from a dataset's actual feature values.

    The sketch construction unit is initialized with per-dimension min
    and max values (section 4.1.1); sketches only discriminate when
    those bounds track the data, so deriving them from a representative
    sample is the intended workflow.  ``margin`` widens each range
    slightly so unseen data near the boundary still lands inside.
    Constant dimensions get a token range to stay sketchable.
    """
    stacked = np.concatenate([obj.features for obj in dataset])
    mins = stacked.min(axis=0)
    maxs = stacked.max(axis=0)
    span = maxs - mins
    pad = margin * np.where(span > 0, span, 1.0)
    return FeatureMeta(stacked.shape[1], mins - pad, maxs + pad, weights)


@dataclass
class Dataset:
    """An in-memory collection of objects keyed by object id.

    This is a convenience container used by examples, benchmarks and the
    evaluation tool; the engine itself persists objects through the
    metadata manager.
    """

    objects: Dict[int, ObjectSignature] = field(default_factory=dict)

    def add(self, obj: ObjectSignature) -> int:
        if obj.object_id is None:
            obj.object_id = (max(self.objects) + 1) if self.objects else 0
        if obj.object_id in self.objects:
            raise KeyError(f"duplicate object id {obj.object_id}")
        self.objects[obj.object_id] = obj
        return obj.object_id

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[ObjectSignature]:
        return iter(self.objects.values())

    def __getitem__(self, object_id: int) -> ObjectSignature:
        return self.objects[object_id]

    def __contains__(self, object_id: int) -> bool:
        return object_id in self.objects

    @property
    def total_segments(self) -> int:
        return sum(obj.num_segments for obj in self)

    @property
    def avg_segments(self) -> float:
        return self.total_segments / len(self) if self.objects else 0.0
