"""Sketch construction — Algorithms 1 and 2 of the paper.

A sketch is an N-bit vector built from a D-dimensional feature vector so
that the Hamming distance between two sketches estimates (a thresholded
transform of) the weighted l1 distance between the original vectors.

*Algorithm 1* draws ``N x K`` random ``(i, t)`` pairs: dimension ``i`` is
sampled with probability proportional to ``w_i * (max_i - min_i)`` and the
threshold ``t`` uniformly from ``[min_i, max_i]``.  *Algorithm 2* turns a
vector ``v`` into bits ``b_n = XOR_{k<K} [v[i_{nk}] >= t_{nk}]``.

For a single threshold bit, ``P[bit_a != bit_b] = |a_i - b_i| / range_i``
in the sampled dimension, so the expected Hamming distance of two N-bit
K=1 sketches is ``N * d_w(a, b) / sum_i w_i range_i`` — proportional to
the weighted l1 distance.  XOR-folding K independent bits dampens large
distances: if each bit differs with probability p, the XOR differs with
probability ``(1 - (1 - 2p)^K) / 2``, which is ~``K p`` for small p but
saturates at 1/2 — the outlier-thresholding effect the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .bitvector import hamming_distance, hamming_to_many, pack_bits
from .types import FeatureMeta

__all__ = ["SketchParams", "SketchConstructor", "estimate_l1_from_hamming"]


@dataclass(frozen=True)
class SketchParams:
    """Initialization parameters of the sketch construction unit.

    Mirrors section 4.1.1: ``N`` sketch size in bits, per-dimension
    ``min``/``max``, optional per-dimension weights ``w``, and threshold
    control ``K`` (default 1).
    """

    n_bits: int
    meta: FeatureMeta
    k_xor: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_bits <= 0:
            raise ValueError("sketch size N must be positive")
        if self.k_xor <= 0:
            raise ValueError("threshold control K must be positive")


class SketchConstructor:
    """Converts feature vectors to packed N-bit sketches.

    The random ``(i, t)`` pairs are generated once at construction from
    ``params.seed`` (Algorithm 1) and reused for every vector — both
    database and query vectors must be sketched by the *same* constructor
    (or one rebuilt with identical parameters) for Hamming distances to
    be meaningful.
    """

    def __init__(self, params: SketchParams) -> None:
        self.params = params
        meta = params.meta
        rng = np.random.default_rng(params.seed)

        raw = meta.ranges.copy()
        if meta.weights is not None:
            raw = raw * meta.weights
        total = float(raw.sum())
        if total <= 0.0:
            raise ValueError(
                "all dimensions have zero weighted range; nothing to sketch"
            )
        self.dim_probs = raw / total

        size = (params.n_bits, params.k_xor)
        self.rnd_i = rng.choice(meta.dim, size=size, p=self.dim_probs)
        # t uniform in [min_i, max_i] for each sampled dimension i.
        u = rng.random(size)
        lo = meta.min_values[self.rnd_i]
        hi = meta.max_values[self.rnd_i]
        self.rnd_t = lo + u * (hi - lo)

    @property
    def n_bits(self) -> int:
        return self.params.n_bits

    @property
    def n_words(self) -> int:
        return (self.params.n_bits + 63) // 64

    def sketch_bits(self, vectors: np.ndarray) -> np.ndarray:
        """Algorithm 2, vectorized: ``(rows, D)`` vectors -> ``(rows, N)`` bits."""
        v = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if v.shape[1] != self.params.meta.dim:
            raise ValueError(
                f"expected {self.params.meta.dim}-dim vectors, got {v.shape[1]}"
            )
        # bits[r, n, k] = v[r, rnd_i[n, k]] >= rnd_t[n, k]
        sampled = v[:, self.rnd_i]  # (rows, N, K)
        bits = sampled >= self.rnd_t[None, :, :]
        folded = np.bitwise_xor.reduce(bits.astype(np.uint8), axis=2)
        return folded

    def sketch(self, vector: np.ndarray) -> np.ndarray:
        """Sketch one vector; returns packed uint64 words."""
        return pack_bits(self.sketch_bits(np.asarray(vector)[None, :]))[0]

    def sketch_many(self, vectors: np.ndarray) -> np.ndarray:
        """Sketch many vectors; returns ``(rows, n_words)`` packed words."""
        return pack_bits(self.sketch_bits(vectors))

    def hamming(self, sketch_a: np.ndarray, sketch_b: np.ndarray) -> int:
        return hamming_distance(sketch_a, sketch_b)

    def hamming_scan(self, query_sketch: np.ndarray, database: np.ndarray) -> np.ndarray:
        """Hamming distance from a query sketch to every database sketch row."""
        return hamming_to_many(query_sketch, database)

    def expected_collision_probability(self, l1: float) -> float:
        """Expected per-bit disagreement probability for a given weighted
        l1 distance, via the XOR folding formula.

        Useful for converting Hamming distances back to l1 estimates and
        for testing that measured Hamming distances track theory.
        """
        meta = self.params.meta
        raw = meta.ranges.copy()
        if meta.weights is not None:
            raw = raw * meta.weights
        denom = float(raw.sum())
        p = min(max(l1 / denom, 0.0), 1.0)
        k = self.params.k_xor
        return 0.5 * (1.0 - (1.0 - 2.0 * p) ** k)


def estimate_l1_from_hamming(
    hamming: float, constructor: SketchConstructor
) -> float:
    """Invert the expected-Hamming relation to estimate weighted l1 distance.

    For K=1 this is exact inversion of the proportionality; for K>1 the
    transform saturates at ``N/2`` so estimates are clipped to the
    invertible region.  This is a diagnostic helper — the engine itself
    ranks by raw Hamming distance, never needing the inversion.
    """
    params = constructor.params
    frac = min(max(hamming / params.n_bits, 0.0), 0.5 - 1e-12)
    # frac = (1 - (1 - 2p)^K) / 2  =>  p = (1 - (1 - 2 frac)^(1/K)) / 2
    p = 0.5 * (1.0 - (1.0 - 2.0 * frac) ** (1.0 / params.k_xor))
    meta = params.meta
    raw = meta.ranges.copy()
    if meta.weights is not None:
        raw = raw * meta.weights
    return p * float(raw.sum())
