"""Bit-sampling LSH index over sketches — the paper's future-work item.

The paper contrasts its *filtering* approach (linear scan over compact
sketches) with the *indexing* approach of locality-sensitive hashing
(Indyk-Motwani) and names "improved indexing data structures for
similarity search" as future work.  This module provides that index:
classic bit-sampling LSH for Hamming space, layered on the existing
sketches (whose Hamming distance already estimates the weighted l1
distance, so the composition is an l1 LSH).

Each of ``num_tables`` hash tables samples ``bits_per_key`` random bit
positions of the N-bit sketch; a segment lands in the bucket keyed by
those bits.  Near sketches (small Hamming distance) collide in at least
one table with high probability; far ones rarely do.  Query cost is
O(num_tables x bucket sizes) instead of a full scan — sublinear when
buckets stay small, at the price of missing neighbors whose sampled
bits all differ (the recall/speed trade the paper alludes to).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from .bitvector import hamming_many_to_many, unpack_bits

__all__ = ["LSHParams", "LSHIndex"]


class LSHParams:
    """Configuration: number of tables and sampled bits per table key."""

    __slots__ = ("num_tables", "bits_per_key", "seed")

    def __init__(self, num_tables: int = 8, bits_per_key: int = 16, seed: int = 0) -> None:
        if num_tables <= 0 or bits_per_key <= 0:
            raise ValueError("num_tables and bits_per_key must be positive")
        self.num_tables = num_tables
        self.bits_per_key = bits_per_key
        self.seed = seed

    def __repr__(self) -> str:
        return (
            f"LSHParams(num_tables={self.num_tables}, "
            f"bits_per_key={self.bits_per_key}, seed={self.seed})"
        )


class LSHIndex:
    """Maps segment sketches to owning object ids via LSH buckets."""

    def __init__(self, n_bits: int, params: LSHParams = None) -> None:
        self.n_bits = n_bits
        self.params = params or LSHParams()
        if self.params.bits_per_key > n_bits:
            raise ValueError("bits_per_key cannot exceed the sketch size")
        rng = np.random.default_rng(self.params.seed)
        self._positions = [
            rng.choice(n_bits, size=self.params.bits_per_key, replace=False)
            for _ in range(self.params.num_tables)
        ]
        self._tables: List[Dict[bytes, Set[int]]] = [
            {} for _ in range(self.params.num_tables)
        ]
        self._sketches: Dict[int, np.ndarray] = {}
        self._num_segments = 0

    def _keys(self, packed_sketch: np.ndarray) -> List[bytes]:
        return [keys[0] for keys in self._keys_many(packed_sketch)]

    def _keys_many(self, packed_sketches: np.ndarray) -> List[List[bytes]]:
        """Bucket keys of every sketch row, per table: ``keys[table][row]``.

        One unpack + fancy-index gather + packbits per table for the
        whole batch, instead of re-unpacking each row separately.
        """
        rows = np.atleast_2d(np.asarray(packed_sketches, dtype=np.uint64))
        bits = np.atleast_2d(unpack_bits(rows, self.n_bits))
        out: List[List[bytes]] = []
        for pos in self._positions:
            packed = np.packbits(bits[:, pos], axis=1)
            out.append([row.tobytes() for row in packed])
        return out

    def add(self, object_id: int, sketches: np.ndarray) -> None:
        """Index every segment sketch of one object."""
        sketches = np.atleast_2d(np.asarray(sketches, dtype=np.uint64))
        for table, keys in zip(self._tables, self._keys_many(sketches)):
            for key in keys:
                table.setdefault(key, set()).add(object_id)
        self._sketches[object_id] = sketches
        self._num_segments += sketches.shape[0]

    def remove(self, object_id: int, sketches: np.ndarray) -> None:
        """Remove an object's segment sketches from every bucket."""
        sketches = np.atleast_2d(np.asarray(sketches, dtype=np.uint64))
        for table, keys in zip(self._tables, self._keys_many(sketches)):
            for key in keys:
                bucket = table.get(key)
                if bucket is not None:
                    bucket.discard(object_id)
                    if not bucket:
                        del table[key]
        self._sketches.pop(object_id, None)
        self._num_segments -= sketches.shape[0]

    def candidates(self, query_sketches: np.ndarray) -> Set[int]:
        """Union of bucket hits across all tables and query segments."""
        query_sketches = np.atleast_2d(np.asarray(query_sketches, dtype=np.uint64))
        out: Set[int] = set()
        for table, keys in zip(self._tables, self._keys_many(query_sketches)):
            for key in keys:
                bucket = table.get(key)
                if bucket:
                    out |= bucket
        return out

    def candidates_within(
        self, query_sketches: np.ndarray, max_hamming: int
    ) -> Set[int]:
        """Bucket probe followed by batched Hamming verification.

        LSH buckets admit false positives: two far sketches can agree on
        every sampled bit of some table.  This probe gathers the bucket
        hits' stored segment sketches into one matrix and verifies them
        against every query segment in a single
        :func:`~repro.core.bitvector.hamming_many_to_many` pass, keeping
        only objects with at least one segment within ``max_hamming`` of
        some query segment.
        """
        hits = self.candidates(query_sketches)
        if not hits:
            return hits
        ids = sorted(hits)
        matrices = [self._sketches[i] for i in ids]
        counts = np.array([m.shape[0] for m in matrices])
        dists = hamming_many_to_many(
            np.atleast_2d(np.asarray(query_sketches, dtype=np.uint64)),
            np.concatenate(matrices, axis=0),
        )
        # Best match per stored segment over all query segments, then the
        # best segment of each object via grouped reduction.
        best = dists.min(axis=0)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        object_best = np.minimum.reduceat(best, starts)
        return {
            object_id
            for object_id, d in zip(ids, object_best)
            if d <= max_hamming
        }

    @property
    def num_segments(self) -> int:
        return self._num_segments

    def verify_consistency(self) -> List[str]:
        """Audit buckets against the stored sketches; [] when clean.

        Rebuilds the expected bucket membership from ``_sketches`` (the
        ground truth the mutation paths maintain) and diffs it against
        the live tables.  Used by the churn tests to prove that
        interleaved add/remove sequences — including the engine's
        rollback paths — leave no stale or missing bucket entries, and
        that ``num_segments`` still matches the stored rows.
        """
        problems: List[str] = []
        expected_segments = sum(m.shape[0] for m in self._sketches.values())
        if expected_segments != self._num_segments:
            problems.append(
                f"num_segments={self._num_segments} but stored sketches "
                f"hold {expected_segments} rows"
            )
        expected: List[Dict[bytes, Set[int]]] = [
            {} for _ in self._positions
        ]
        for object_id, sketches in self._sketches.items():
            for table, keys in zip(expected, self._keys_many(sketches)):
                for key in keys:
                    table.setdefault(key, set()).add(object_id)
        for ti, (want, have) in enumerate(zip(expected, self._tables)):
            if want == have:
                continue
            for key in set(want) | set(have):
                w, h = want.get(key, set()), have.get(key, set())
                if w != h:
                    problems.append(
                        f"table {ti} bucket {key.hex()}: "
                        f"expected {sorted(w)}, found {sorted(h)}"
                    )
        return problems

    def bucket_stats(self) -> Tuple[float, int]:
        """(mean bucket size, max bucket size) across all tables."""
        sizes = [len(b) for table in self._tables for b in table.values()]
        if not sizes:
            return 0.0, 0
        return float(np.mean(sizes)), max(sizes)

    def expected_collision_probability(self, hamming: int) -> float:
        """P[>=1 table collision] for a pair at the given sketch distance."""
        p_bit = 1.0 - hamming / self.n_bits
        p_table = p_bit ** self.params.bits_per_key
        return 1.0 - (1.0 - p_table) ** self.params.num_tables
