"""Plug-in interface for data-type specific modules.

Section 4.2: system builders supply (1) a segmentation and feature
extraction module, (2) a segment distance function, and (3) an object
distance function.  The C prototypes in the paper are::

    ObjectT seg_extract_func(const char *filename);
    float   seg_distance(FeatureT segA, FeatureT segB);
    float   obj_distance(ObjectT objA, ObjectT objB);

Here a data type is described by a :class:`DataTypePlugin` bundling those
three callables plus the feature-space metadata the sketch construction
unit needs.  Built-in data types (images, audio, shapes, genomics) live
under :mod:`repro.datatypes` and each exposes a ``make_plugin()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from .distance import l1_distance
from .emd import EMDDistance, EMDParams
from .types import FeatureMeta, ObjectSignature

__all__ = ["DataTypePlugin", "register_plugin", "get_plugin", "list_plugins"]

SegExtractFunc = Callable[[str], ObjectSignature]
SegDistanceFunc = Callable[[np.ndarray, np.ndarray], float]
ObjDistanceFunc = Callable[[ObjectSignature, ObjectSignature], float]


@dataclass
class DataTypePlugin:
    """Everything the engine needs to know about one data type.

    Parameters
    ----------
    name:
        Registry key (e.g. ``"image"``).
    meta:
        Feature-space bounds/weights for sketch construction.
    seg_extract:
        Maps a file path to an :class:`ObjectSignature`.  Optional when
        data arrives pre-extracted (the engine also accepts signatures
        directly).
    seg_distance:
        Segment distance for filtering; defaults to l1, the paper's most
        common choice.
    obj_distance:
        Object distance for ranking; defaults to plain EMD over the
        segment distance.  Single-segment data types may reuse the
        segment distance here, as the shape and genomic systems do.
    """

    name: str
    meta: FeatureMeta
    seg_extract: Optional[SegExtractFunc] = None
    seg_distance: SegDistanceFunc = field(default=l1_distance)
    obj_distance: Optional[ObjDistanceFunc] = None
    emd_params: Optional[EMDParams] = None

    def __post_init__(self) -> None:
        if self.obj_distance is None:
            self.obj_distance = EMDDistance(self.emd_params)

    def extract(self, filename: str) -> ObjectSignature:
        if self.seg_extract is None:
            raise NotImplementedError(
                f"plugin {self.name!r} has no segmentation/feature-extraction "
                "module; insert ObjectSignature values directly"
            )
        obj = self.seg_extract(filename)
        if obj.dim != self.meta.dim:
            raise ValueError(
                f"plugin {self.name!r} extracted {obj.dim}-dim features but "
                f"declares dim={self.meta.dim}"
            )
        return obj


_PLUGINS: Dict[str, DataTypePlugin] = {}


def register_plugin(plugin: DataTypePlugin, replace: bool = False) -> None:
    """Register a plugin by name for lookup by servers/tools."""
    if plugin.name in _PLUGINS and not replace:
        raise KeyError(f"plugin {plugin.name!r} already registered")
    _PLUGINS[plugin.name] = plugin


def get_plugin(name: str) -> DataTypePlugin:
    try:
        return _PLUGINS[name]
    except KeyError:
        raise KeyError(
            f"unknown plugin {name!r}; registered: {sorted(_PLUGINS)}"
        ) from None


def list_plugins() -> Dict[str, DataTypePlugin]:
    return dict(_PLUGINS)
