"""The core similarity search engine (section 4.1.1).

Two operations: *data input* (segment + extract features via the plug-in,
sketch each feature vector, store everything) and *query processing*
(sketch the query's segments, filter, rank).  The engine supports the
three search methods compared in section 6.3.3:

- ``BRUTE_FORCE_ORIGINAL`` — object distance against every object using
  the original feature vectors.
- ``BRUTE_FORCE_SKETCH`` — object distance against every object with
  segment distances estimated from sketch Hamming distances.
- ``FILTERING`` — sketch-based filtering to a candidate set, then exact
  object distance ranking on the candidates only.
"""

from __future__ import annotations

import enum
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..observability import metrics as _metrics
from ..observability.tracing import QueryTrace, TraceRecorder
from .bitvector import hamming_many_to_many, hamming_to_many
from .filtering import (
    ArenaCompactor,
    FilterParams,
    SegmentStore,
    sketch_filter_many,
)
from .lshindex import LSHIndex, LSHParams
from .parallel import (
    BACKEND_GAUGE_VALUES,
    BACKENDS,
    FilterPool,
    ParallelConfig,
    ParallelFilterPool,
    ParallelScanError,
    QueryResultCache,
    choose_backend,
    make_pool,
    parallel_filter_candidates,
)
from .plugin import DataTypePlugin
from .ranking import (
    RankParams,
    RankStats,
    SearchResult,
    rank_candidates_many,
)
from .sketch import SketchConstructor, SketchParams
from .transport import solve_transport
from .types import ObjectSignature

__all__ = [
    "LSHIndexError",
    "SearchMethod",
    "EngineStats",
    "SimilaritySearchEngine",
]

# Query-pipeline telemetry (see docs/OBSERVABILITY.md).  Handles are
# created once at import; the registry's reset() zeroes them in place.
_M_QUERIES = _metrics.counter("engine.queries")
_M_QUERY_SECONDS = _metrics.histogram("engine.query_seconds")
_M_BATCH_QUERIES = _metrics.counter("engine.batch_queries")
_M_BATCH_SECONDS = _metrics.histogram("engine.batch_seconds")
_M_FILTER_SECONDS = _metrics.histogram("engine.filter_seconds")
_M_RANK_SECONDS = _metrics.histogram("engine.rank_seconds")
_M_CANDIDATES = _metrics.histogram(
    "engine.candidates", buckets=_metrics.DEFAULT_COUNT_BUCKETS
)
_M_DISTANCE_EVALS = _metrics.counter("engine.distance_evals")
# Ranking-cascade telemetry: how many candidates skipped the exact
# transportation solve thanks to a lower bound, and where rank time went
# (bound computation vs exact solves).  prune_rate is the cumulative
# prunes / (prunes + exact evals) ratio.
_M_RANK_LB_PRUNES = _metrics.counter("rank.lower_bound_prunes")
_M_RANK_EXACT_EVALS = _metrics.counter("rank.exact_evals")
_M_RANK_PRUNE_RATE = _metrics.gauge("rank.prune_rate")
_M_RANK_BOUND_SECONDS = _metrics.histogram("rank.bound_seconds")
_M_RANK_SOLVE_SECONDS = _metrics.histogram("rank.solve_seconds")
_M_POOL_FALLBACKS = _metrics.counter("engine.pool_fallbacks")
_M_CACHE_RACE_SKIPS = _metrics.counter("query_cache.stale_store_skips")
_M_ERR_POOL_SCAN = _metrics.counter("errors_absorbed.engine.pool_scan")
_M_ERR_POOL_CLOSE = _metrics.counter("errors_absorbed.engine.pool_close")
_M_ERR_BATCH_ROLLBACK = _metrics.counter(
    "errors_absorbed.engine.batch_rollback"
)
# A worker process dying mid-batch is worth its own series on top of the
# generic pool_scan absorption: crashes point at OOM kills / segfaults,
# timeouts and protocol errors at overload or version skew.
_M_ERR_WORKER_CRASH = _metrics.counter(
    "errors_absorbed.parallel_worker_crash"
)
# Resolved scan backend of the most recent filtering batch
# (0 = serial, 1 = thread, 2 = process; see BACKEND_GAUGE_VALUES).
_M_PARALLEL_BACKEND = _metrics.gauge("parallel.backend")


class LSHIndexError(ValueError):
    """The LSH search path failed: index absent or its lookup raised.

    The LSH index is an in-memory acceleration structure, so this error
    is the one failure the server's command layer may answer by falling
    back to the exhaustive filtering path.  Subclasses ``ValueError``
    because the index-absent case historically raised that.
    """


class SearchMethod(enum.Enum):
    """Search policies of section 6.3.3."""

    BRUTE_FORCE_ORIGINAL = "brute_force_original"
    BRUTE_FORCE_SKETCH = "brute_force_sketch"
    FILTERING = "filtering"
    # Extension beyond the paper's three policies: LSH *indexing* over
    # the segment sketches (the paper's stated future work), available
    # when the engine was built with lsh_params.
    LSH = "lsh"

    @classmethod
    def parse(cls, text: str) -> "SearchMethod":
        text = text.strip().lower()
        for method in cls:
            if method.value == text or method.name.lower() == text:
                return method
        raise ValueError(f"unknown search method {text!r}")


@dataclass(frozen=True)
class EngineStats:
    """Storage accounting used for the paper's metadata-size claims."""

    num_objects: int
    num_segments: int
    feature_bits_per_vector: int
    sketch_bits_per_vector: int
    feature_bytes: int
    sketch_bytes: int

    @property
    def compression_ratio(self) -> float:
        """Feature-vector bits to sketch bits — e.g. 4.7:1 for VARY images."""
        if self.sketch_bits_per_vector == 0:
            return float("inf")
        return self.feature_bits_per_vector / self.sketch_bits_per_vector

    @property
    def avg_segments_per_object(self) -> float:
        return self.num_segments / self.num_objects if self.num_objects else 0.0


class SimilaritySearchEngine:
    """General-purpose content-based similarity search over one data type.

    Parameters
    ----------
    plugin:
        The data-type plug-in (segmentation/extraction + distances).
    sketch_params:
        Sketch construction parameters; ``feature_meta`` must match the
        plug-in's.  Defaults to a 64-bit, K=1 sketch over the plug-in's
        declared feature space.
    filter_params:
        Filtering-unit tuning; defaults are reasonable for small/medium
        datasets and every benchmark overrides them explicitly.
    metadata:
        Optional persistence backend (see
        :class:`repro.metadata.manager.MetadataManager`).  When given,
        inserts are written through and :meth:`load` can rebuild the
        in-memory state after a restart.
    parallel:
        Parallel filtering-scan knobs
        (:class:`~repro.core.parallel.ParallelConfig`).  The sharded
        multi-process scan auto-enables once the store exceeds
        ``parallel.min_segments`` live segments on a multi-core host; it
        also carries the query-result cache capacity.  ``None`` means
        defaults (auto-enable at 50k segments, one worker per CPU).
    rank_params:
        Ranking-cascade knobs (:class:`~repro.core.ranking.RankParams`);
        defaults enable batched cost matrices and lower-bound pruning.
        Live-tunable via the server's ``setparam rank_* on|off``.
    """

    def __init__(
        self,
        plugin: DataTypePlugin,
        sketch_params: Optional[SketchParams] = None,
        filter_params: Optional[FilterParams] = None,
        metadata: Optional["object"] = None,
        lsh_params: Optional[LSHParams] = None,
        parallel: Optional[ParallelConfig] = None,
        rank_params: Optional[RankParams] = None,
    ) -> None:
        self.plugin = plugin
        if sketch_params is None:
            sketch_params = SketchParams(n_bits=64, meta=plugin.meta)
        if sketch_params.meta.dim != plugin.meta.dim:
            raise ValueError(
                "sketch params feature dimension does not match the plug-in"
            )
        self.sketcher = SketchConstructor(sketch_params)
        self.filter_params = filter_params or FilterParams()
        self.rank_params = rank_params or RankParams()
        self.metadata = metadata
        self._objects: Dict[int, ObjectSignature] = {}
        self._object_sketches: Dict[int, np.ndarray] = {}
        self._store = SegmentStore(
            n_words=self.sketcher.n_words, dim=plugin.meta.dim
        )
        self.lsh_index = (
            LSHIndex(self.sketcher.n_bits, lsh_params)
            if lsh_params is not None
            else None
        )
        self._next_id = 0
        self._compactor: Optional[ArenaCompactor] = None
        self._parallel_cfg = parallel if parallel is not None else ParallelConfig()
        self._pool: Optional[FilterPool] = None
        self._pool_broken = False
        self._filter_cache = QueryResultCache(self._parallel_cfg.cache_entries)
        # Per-engine tracing state: opt-in stage traces plus the always
        # armed slow-query log (the server's ``setparam trace on|off``).
        self.tracer = TraceRecorder()
        # Observability hook: called with a reason string whenever the
        # pool fails and a query silently falls back to the serial scan
        # (the server wires this to HealthState.record_fallback).
        self.on_parallel_fallback: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    # Data input
    # ------------------------------------------------------------------
    def insert(
        self,
        signature: ObjectSignature,
        attributes: Optional[Mapping[str, str]] = None,
        object_id: Optional[int] = None,
        filename: Optional[str] = None,
        _sketches: Optional[np.ndarray] = None,
    ) -> int:
        """Insert a pre-extracted object; returns its assigned object id.

        ``_sketches`` lets :meth:`insert_many` pass pre-computed sketch
        rows so bulk inserts sketch everything in one batched call.
        """
        if object_id is None:
            object_id = signature.object_id
        if object_id is None:
            object_id = self._next_id
        if object_id in self._objects:
            raise KeyError(f"object id {object_id} already present")
        prev_signature_id = signature.object_id
        prev_next_id = self._next_id
        signature.object_id = object_id
        self._next_id = max(self._next_id, object_id + 1)

        sketches = (
            _sketches
            if _sketches is not None
            else self.sketcher.sketch_many(signature.features)
        )
        # The store validates first (sketch shape, zero-segment objects)
        # and goes first: a rejected object must not leave a ghost entry
        # in the engine dicts, and a store failure leaves nothing to
        # roll back beyond the id bookkeeping.
        try:
            self._store.add_object(object_id, sketches, signature.features)
        except Exception:
            self._next_id = prev_next_id
            signature.object_id = prev_signature_id
            raise
        self._objects[object_id] = signature
        self._object_sketches[object_id] = sketches
        lsh_added = False
        try:
            if self.lsh_index is not None:
                self.lsh_index.add(object_id, sketches)
                lsh_added = True
            if self.metadata is not None:
                self.metadata.put_object(
                    object_id, signature, sketches, dict(attributes or {}),
                    filename=filename,
                )
        except Exception:
            # Write-through failed: roll the in-memory insert back so
            # queries cannot return an object that would vanish on
            # restart (memory and store must agree on the object set).
            # The id counter and the caller's signature are restored
            # too — a failed insert must not consume an id or leave
            # the signature claiming an id that was never assigned.
            del self._objects[object_id]
            del self._object_sketches[object_id]
            self._store.remove_object(object_id)
            if lsh_added:
                self.lsh_index.remove(object_id, sketches)
            self._next_id = prev_next_id
            signature.object_id = prev_signature_id
            raise
        return object_id

    def insert_file(
        self,
        filename: str,
        attributes: Optional[Mapping[str, str]] = None,
        object_id: Optional[int] = None,
    ) -> int:
        """Segment + extract a file through the plug-in, then insert it.

        The filename is recorded in the metadata manager's object-to-file
        mapping (when persistence is enabled), which is how the directory
        scanner avoids re-importing files across restarts."""
        return self.insert(
            self.plugin.extract(filename), attributes, object_id, filename=filename
        )

    def insert_many(self, signatures: Sequence[ObjectSignature]) -> List[int]:
        """Insert many pre-extracted objects; returns their assigned ids.

        All objects' feature vectors are concatenated and sketched in
        *one* ``sketch_many`` call instead of one call per object.
        Algorithm 2's ``(N, K)`` sampling gather and the bit-packing then
        run once over a ``(total_segments, D)`` matrix, which amortizes
        the per-call numpy dispatch: for bulk loads of small objects
        (a few segments each) this makes insertion several times faster
        than the per-object loop it replaces, and the win grows with the
        batch size.

        The batch is all-or-nothing: every signature is validated up
        front (at least one segment, no id collisions with the engine or
        within the batch), and if an insert still fails mid-batch the
        already-applied prefix is rolled back before the error
        propagates — a failed bulk load leaves the engine exactly as it
        was.
        """
        signatures = list(signatures)
        if not signatures:
            return []
        # Up-front validation: a zero-segment signature would raise
        # inside the store after earlier batch members were applied, and
        # a colliding id would raise in insert() the same way.  Reject
        # the whole batch before touching any state.
        batch_ids: Set[int] = set()
        for pos, sig in enumerate(signatures):
            if sig.num_segments == 0:
                raise ValueError(
                    f"insert_many: signature at batch position {pos} has no "
                    "segments; objects must have at least one segment to be "
                    "searchable (whole batch rejected)"
                )
            oid = sig.object_id
            if oid is not None:
                if oid in self._objects or oid in batch_ids:
                    raise KeyError(
                        f"insert_many: object id {oid} at batch position "
                        f"{pos} already present (whole batch rejected)"
                    )
                batch_ids.add(oid)
        all_sketches = self.sketcher.sketch_many(
            np.concatenate([sig.features for sig in signatures], axis=0)
        )
        splits = np.cumsum([sig.num_segments for sig in signatures])[:-1]
        inserted: List[Tuple[int, ObjectSignature, Optional[int]]] = []
        prev_next_id = self._next_id
        try:
            for sig, rows in zip(signatures, np.split(all_sketches, splits)):
                prev_sig_id = sig.object_id
                inserted.append(
                    (self.insert(sig, _sketches=rows), sig, prev_sig_id)
                )
        except Exception:
            # A failure the validation could not foresee (e.g. the
            # metadata backend dying mid-batch): undo the applied
            # prefix.  Rollback is best-effort — a second failure here
            # must not mask the original error.
            for oid, sig, prev_sig_id in reversed(inserted):
                try:
                    self.remove(oid)
                except Exception:
                    _M_ERR_BATCH_ROLLBACK.inc()
                sig.object_id = prev_sig_id
            # A failed batch must not consume ids either.
            self._next_id = prev_next_id
            raise
        return [oid for oid, _sig, _prev in inserted]

    def remove(self, object_id: int) -> None:
        """Remove an object from the engine (and the metadata backend).

        The segment store tombstones the object's sketch rows and
        compacts lazily; the LSH index, when present, drops its bucket
        entries.

        Exception-safe, mirroring :meth:`insert`'s rollback: the
        in-memory structures are only committed once the metadata
        backend acknowledged the delete.  If it fails, the store rows
        and LSH entries are restored (the sketch rows re-append at the
        arena tail — positions move, contents don't) and the object
        stays fully searchable.
        """
        if object_id not in self._objects:
            raise KeyError(f"unknown object {object_id}")
        signature = self._objects[object_id]
        sketches = self._object_sketches[object_id]
        self._store.remove_object(object_id)
        lsh_removed = False
        try:
            if self.lsh_index is not None:
                self.lsh_index.remove(object_id, sketches)
                lsh_removed = True
            if self.metadata is not None:
                self.metadata.delete_object(object_id)
        except Exception:
            self._store.add_object(object_id, sketches, signature.features)
            if lsh_removed:
                self.lsh_index.add(object_id, sketches)
            raise
        del self._objects[object_id]
        del self._object_sketches[object_id]

    def load(self) -> int:
        """Rebuild in-memory state from the metadata backend.

        Returns the number of objects loaded.  Used after restart or
        crash recovery; sketches are reused as stored (they were built
        with the same constructor seed).
        """
        if self.metadata is None:
            raise RuntimeError("engine has no metadata backend")
        count = 0
        for object_id, signature, sketches, _attrs in self.metadata.iter_objects():
            if object_id in self._objects:
                continue
            signature.object_id = object_id
            self._objects[object_id] = signature
            self._object_sketches[object_id] = sketches
            self._store.add_object(object_id, sketches, signature.features)
            if self.lsh_index is not None:
                self.lsh_index.add(object_id, sketches)
            self._next_id = max(self._next_id, object_id + 1)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Parallel scan + result cache
    # ------------------------------------------------------------------
    def _choose_backend(self, batch_rows: int = 1) -> str:
        """Resolve the scan backend for the next filtering batch.

        Wraps :func:`~repro.core.parallel.choose_backend` (the ``auto``
        cost model over arena rows, batch size, and available cores)
        with the engine's own vetoes: a broken pool or a resolved worker
        count of 1 always means serial, whatever the configured backend.
        """
        cfg = self._parallel_cfg
        if self._pool_broken or cfg.effective_workers() < 2:
            return "serial"
        return choose_backend(cfg, len(self._store), batch_rows)

    def _ensure_pool(self, backend: str) -> FilterPool:
        """Spin up the pool for ``backend`` / refresh it to the store's
        current epoch.  A live pool of a different backend (the cost
        model changed its mind, or the operator forced a backend) is
        torn down and replaced.

        A stale pool is refreshed through the cheapest path that
        applies: the arena's :meth:`~SegmentStore.delta_since` journal
        ships only appended chunks + tombstones (``arena.delta_loads``),
        and only when no delta is available — first load, compaction in
        the window, journal trimmed — does the pool pay for a full
        snapshot reload (``parallel.arena_loads``).
        """
        cfg = self._parallel_cfg
        if self._pool is not None and self._pool.backend != backend:
            pool, self._pool = self._pool, None
            try:
                pool.close()
            except OSError:
                _M_ERR_POOL_CLOSE.inc()
        if self._pool is None:
            self._pool = make_pool(
                backend,
                num_workers=cfg.effective_workers(),
                shard_rows=cfg.shard_rows,
                start_method=cfg.start_method,
                response_timeout=cfg.response_timeout,
            )
        pool = self._pool
        if pool.matches(self._store.epoch):
            return pool
        loaded = pool.loaded_epoch
        if loaded is not None:
            delta = self._store.delta_since(loaded)
            if delta is not None and pool.load_delta(
                delta.new_owners,
                delta.new_sketches,
                delta.from_epoch,
                delta.to_epoch,
                dead_rows=delta.dead_rows,
                base_rows=delta.base_rows,
            ):
                return pool
        epoch, owners, sketches = self._store.versioned_snapshot()
        if not pool.matches(epoch):
            pool.load(owners, sketches, epoch=epoch)
        return pool

    def _abandon_pool(self, reason: str) -> None:
        """Pool failure: disable it and notify; queries stay serial."""
        _M_POOL_FALLBACKS.inc()
        self._pool_broken = True
        _M_PARALLEL_BACKEND.set(BACKEND_GAUGE_VALUES["serial"])
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.close()
            except OSError:
                # Tearing down an already-broken pool may fail again at
                # the OS level; the serial fallback must still proceed.
                _M_ERR_POOL_CLOSE.inc()
        if self.on_parallel_fallback is not None:
            # Deliberately unguarded: the callback is wired by the
            # embedding process (the server's HealthState), and a broken
            # observer is a caller bug that must surface, not vanish.
            self.on_parallel_fallback(reason)

    def set_parallel_enabled(self, enabled: bool) -> None:
        """Live toggle (the server's ``setparam parallel on|off``).

        Re-enabling clears the broken flag so a previously failed pool
        gets one fresh start; disabling tears the pool down.
        """
        self._parallel_cfg.enabled = enabled
        if enabled:
            self._pool_broken = False
        else:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.close()

    def set_parallel_backend(self, backend: str) -> None:
        """Live backend override (``setparam parallel backend=...``).

        Accepts any of :data:`~repro.core.parallel.BACKENDS` — ``auto``
        hands the choice back to the cost model, ``serial`` pins the
        in-process scan, ``thread``/``process`` pin a pool
        implementation.  Clears the broken flag (an operator override is
        an explicit re-arm) and tears down any live pool so the next
        scan rebuilds under the new policy.
        """
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; "
                f"expected one of {BACKENDS}"
            )
        self._parallel_cfg.backend = backend
        self._pool_broken = False
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def set_compaction(
        self,
        enabled: bool,
        dead_fraction: Optional[float] = None,
        interval: Optional[float] = None,
    ) -> None:
        """Toggle background arena compaction (``setparam compaction``).

        Enabled: an :class:`~repro.core.filtering.ArenaCompactor` thread
        takes over dead-row cleanup — removals no longer compact inline
        on the mutation path.  Disabled (the default): the thread is
        stopped and the store's inline 25%-dead threshold compaction is
        restored.
        """
        if enabled:
            if self._compactor is not None and self._compactor.running:
                if dead_fraction is not None:
                    self._compactor.dead_fraction = float(dead_fraction)
                if interval is not None:
                    self._compactor.interval = float(interval)
                return
            self._compactor = ArenaCompactor(
                self._store,
                dead_fraction=(
                    0.25 if dead_fraction is None else float(dead_fraction)
                ),
                interval=0.05 if interval is None else float(interval),
            )
            self._compactor.start()
        else:
            compactor, self._compactor = self._compactor, None
            if compactor is not None:
                compactor.stop()

    def compaction_info(self) -> Dict[str, object]:
        """Arena + compactor observability snapshot (``stat``)."""
        compactor = self._compactor
        info: Dict[str, object] = {
            "background": compactor is not None and compactor.running,
        }
        if compactor is not None:
            info["dead_fraction"] = compactor.dead_fraction
            info["interval"] = compactor.interval
        info.update(self._store.arena_info())
        return info

    def parallel_info(self) -> Dict[str, object]:
        """Pool/cache observability snapshot (the server's ``stat``)."""
        cfg = self._parallel_cfg
        pool = self._pool
        return {
            "enabled": cfg.enabled,
            "broken": self._pool_broken,
            "active": pool is not None,
            "backend": cfg.backend,
            "backend_active": pool.backend if pool is not None else "serial",
            "workers": cfg.effective_workers(),
            "min_segments": cfg.min_segments,
            "cache": self._filter_cache.stats(),
        }

    def collect_worker_metrics(self) -> int:
        """Pull pending registry deltas from live scan workers into the
        parent registry (``worker.<i>.*`` / ``workers.*`` series).

        Scans piggyback their own deltas, so this only matters for
        activity between scans; ``metrics``/``stat`` call it right
        before rendering.  Returns workers polled (0 with no pool).  A
        broken pool must not fail a metrics dump: pool errors abandon
        the pool exactly like a failed scan would and report 0.
        """
        pool = self._pool
        if pool is None:
            return 0
        try:
            return pool.fetch_worker_metrics()
        except ParallelScanError as exc:
            self._abandon_pool(f"metrics pull failed: {exc}")
            return 0

    def _query_cache_key(
        self, query: ObjectSignature, query_sketches: np.ndarray, params_key
    ):
        """Identity of one query's scan: params + the exact top-``r``
        sketch rows and their weights (all the scan ever looks at)."""
        params = self.filter_params
        top = query.top_segments(params.num_query_segments)
        weights = np.asarray(query.weights, dtype=np.float64)[top]
        return (
            params_key,
            self.sketcher.n_bits,
            np.ascontiguousarray(query_sketches[top]).tobytes(),
            weights.tobytes(),
        )

    def _filter_candidates(
        self,
        queries: Sequence[ObjectSignature],
        query_sketches_list: Sequence[np.ndarray],
        trace: Optional[QueryTrace] = None,
    ) -> List[Set[int]]:
        """Filtering-phase candidate sets for a batch of queries.

        Order of attack: the epoch-invalidated LRU cache, then the
        sharded multi-process scan (when enabled and the store is big
        enough), then the serial fused scan — which is also the graceful
        fallback when the pool fails mid-flight.  All paths return
        identical candidate sets, so the choice is invisible to callers.
        When ``trace`` is given, the chosen scan path, cache hit/miss
        split, and per-path scan time are recorded on it.
        """
        params = self.filter_params
        n = len(queries)
        results: List[Optional[Set[int]]] = [None] * n
        params_key = params.cache_key()
        cache = self._filter_cache
        keys: List[Optional[tuple]] = [None] * n
        epoch_seen = self._store.epoch
        if cache.max_entries and params_key is not None:
            for i, (q, qs) in enumerate(zip(queries, query_sketches_list)):
                keys[i] = self._query_cache_key(q, qs, params_key)
                hit = cache.lookup(epoch_seen, keys[i])
                if hit is not None:
                    results[i] = set(hit)
        miss = [i for i in range(n) if results[i] is None]
        if trace is not None:
            trace.add_count("cache_hits", n - len(miss))
            trace.add_count("cache_misses", len(miss))
        if not miss:
            if trace is not None:
                trace.note("scan", "cache")
            return results  # type: ignore[return-value]
        miss_queries = [queries[i] for i in miss]
        miss_sketches = [query_sketches_list[i] for i in miss]
        computed: Optional[List[Set[int]]] = None
        computed_epoch: Optional[object] = None
        scan_path = "serial"
        backend = self._choose_backend(
            batch_rows=len(miss_queries) * params.num_query_segments
        )
        _M_PARALLEL_BACKEND.set(BACKEND_GAUGE_VALUES.get(backend, 0))
        if backend != "serial":
            try:
                pool = self._ensure_pool(backend)
                computed_epoch = pool.loaded_epoch
                scan_started = time.perf_counter()
                computed = parallel_filter_candidates(
                    miss_queries, miss_sketches, params,
                    self.sketcher.n_bits, pool, trace=trace,
                )
                scan_path = "parallel"
                if trace is not None:
                    trace.note("backend", backend)
                    trace.add_stage(
                        "parallel_scan", time.perf_counter() - scan_started
                    )
            except (ParallelScanError, OSError) as exc:
                # Only pool-infrastructure failures (dead workers,
                # timeouts, shared-memory exhaustion) may trigger the
                # silent serial fallback; any other exception is a bug
                # in the scan itself and propagates to the caller.
                _M_ERR_POOL_SCAN.inc()
                if (
                    isinstance(exc, ParallelScanError)
                    and exc.kind == "crash"
                ):
                    _M_ERR_WORKER_CRASH.inc()
                self._abandon_pool(f"{type(exc).__name__}: {exc}")
                computed = None
                scan_path = "parallel_fallback"
        if computed is None:
            scan_started = time.perf_counter()
            computed = sketch_filter_many(
                miss_queries, miss_sketches, self._store, params,
                n_bits=self.sketcher.n_bits,
            )
            if trace is not None:
                trace.add_stage(
                    "serial_scan", time.perf_counter() - scan_started
                )
            # The serial scan snapshots internally; only cache when the
            # store provably did not move underneath the whole pass.
            after = self._store.epoch
            computed_epoch = epoch_seen if after == epoch_seen else None
            if computed_epoch is None:
                _M_CACHE_RACE_SKIPS.inc()
        if trace is not None:
            trace.note("scan", scan_path)
        if (
            cache.max_entries
            and params_key is not None
            and computed_epoch is not None
        ):
            for i, cand in zip(miss, computed):
                if keys[i] is not None:
                    cache.store(computed_epoch, keys[i], frozenset(cand))
        for i, cand in zip(miss, computed):
            results[i] = cand
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------
    def query(
        self,
        query: ObjectSignature,
        top_k: int = 10,
        method: SearchMethod = SearchMethod.FILTERING,
        exclude_self: bool = False,
        restrict_to: Optional[Sequence[int]] = None,
        cascade: Optional[int] = None,
    ) -> List[SearchResult]:
        """Find the ``top_k`` objects most similar to ``query``.

        ``restrict_to`` limits the search to a subset of object ids —
        this is how attribute-based search composes with similarity
        search (section 4.1.2): run the attribute query first, then
        similarity-search only its matches.

        ``cascade`` (FILTERING only) inserts a cheap middle stage: the
        filter's candidates are pre-ranked by the sketch-estimated
        object distance and only the best ``cascade`` of them get the
        exact (expensive) object distance.  This trades a little recall
        for a large ranking-cost reduction when the candidate set is
        big — the direction the paper's conclusion sketches for "more
        efficiently computable distance functions".
        """
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if not self._objects:
            return []
        started = time.perf_counter()
        trace = self.tracer.begin(method.value, 1)
        results = self._query_one(
            query, top_k, method, exclude_self, restrict_to, cascade, trace
        )
        elapsed = time.perf_counter() - started
        _M_QUERIES.inc()
        _M_QUERY_SECONDS.observe(elapsed)
        if trace is not None:
            self.tracer.finish(trace, elapsed)
        else:
            self.tracer.observe_total(method.value, 1, elapsed)
        return results

    def _note_rank(
        self, trace: Optional[QueryTrace], seconds: float, stats: RankStats
    ) -> None:
        """Record one ranking pass: wall time, how many candidates got a
        full (expensive) distance evaluation, how many a lower bound
        pruned, and the bound/solve time split (as a ``rank`` span)."""
        _M_RANK_SECONDS.observe(seconds)
        _M_DISTANCE_EVALS.inc(stats.exact_evals)
        _M_RANK_EXACT_EVALS.inc(stats.exact_evals)
        _M_RANK_LB_PRUNES.inc(stats.lower_bound_prunes)
        total = _M_RANK_EXACT_EVALS.value + _M_RANK_LB_PRUNES.value
        if total > 0:
            _M_RANK_PRUNE_RATE.set(_M_RANK_LB_PRUNES.value / total)
        _M_RANK_BOUND_SECONDS.observe(stats.bound_seconds)
        _M_RANK_SOLVE_SECONDS.observe(stats.solve_seconds)
        if trace is not None:
            trace.add_stage("rank", seconds)
            trace.add_count("distance_evals", stats.exact_evals)
            trace.add_count("rank_considered", stats.considered)
            trace.add_count("lower_bound_prunes", stats.lower_bound_prunes)
            trace.add_span(
                "rank", bound=stats.bound_seconds, solve=stats.solve_seconds
            )

    def _rank(
        self,
        query: ObjectSignature,
        candidate_ids,
        top_k: Optional[int],
        exclude_self: bool,
        trace: Optional[QueryTrace],
    ) -> List[SearchResult]:
        """Run the ranking cascade over one candidate set and record it.

        All query paths funnel through here so the cascade (and its
        telemetry) covers FILTERING, LSH, the full-universe brute-force
        path, and the post-``_cascade_prune`` survivors alike.  A
        :class:`~repro.core.emd.NonFiniteDistanceError` raised by a
        poisoned candidate propagates to the caller carrying the
        offending ``object_id``.
        """
        rank_started = time.perf_counter()
        results, stats = rank_candidates_many(
            query, candidate_ids, self._objects, self.plugin.obj_distance,
            top_k=top_k, exclude_self=exclude_self, params=self.rank_params,
        )
        self._note_rank(trace, time.perf_counter() - rank_started, stats)
        return results

    def _query_one(
        self,
        query: ObjectSignature,
        top_k: int,
        method: SearchMethod,
        exclude_self: bool,
        restrict_to: Optional[Sequence[int]],
        cascade: Optional[int],
        trace: Optional[QueryTrace],
    ) -> List[SearchResult]:
        """Dispatch one validated query to its search-method pipeline."""
        universe = (
            set(self._objects)
            if restrict_to is None
            else {i for i in restrict_to if i in self._objects}
        )
        if method is SearchMethod.BRUTE_FORCE_ORIGINAL:
            return self._rank(query, universe, top_k, exclude_self, trace)
        sketch_started = time.perf_counter()
        query_sketches = self.sketcher.sketch_many(query.features)
        if trace is not None:
            trace.add_stage("sketch", time.perf_counter() - sketch_started)
        if method is SearchMethod.BRUTE_FORCE_SKETCH:
            rank_started = time.perf_counter()
            results = self._rank_by_sketch(
                query, query_sketches, universe, top_k, exclude_self
            )
            self._note_rank(
                trace,
                time.perf_counter() - rank_started,
                RankStats(
                    considered=len(universe), exact_evals=len(universe)
                ),
            )
            return results
        if method is SearchMethod.FILTERING:
            filter_started = time.perf_counter()
            candidates = self._filter_candidates(
                [query], [query_sketches], trace=trace
            )[0]
            filter_seconds = time.perf_counter() - filter_started
            _M_FILTER_SECONDS.observe(filter_seconds)
            candidates &= universe
            _M_CANDIDATES.observe(len(candidates))
            if trace is not None:
                trace.add_stage("filter", filter_seconds)
                trace.add_count("candidates", len(candidates))
            if cascade is not None and cascade > 0 and len(candidates) > cascade:
                cascade_started = time.perf_counter()
                candidates = self._cascade_prune(
                    query, query_sketches, candidates, cascade, exclude_self
                )
                if trace is not None:
                    trace.add_stage(
                        "cascade", time.perf_counter() - cascade_started
                    )
                    trace.add_count("cascade_survivors", len(candidates))
            return self._rank(query, candidates, top_k, exclude_self, trace)
        if method is SearchMethod.LSH:
            if self.lsh_index is None:
                raise LSHIndexError(
                    "engine was built without lsh_params; LSH search is "
                    "unavailable"
                )
            filter_started = time.perf_counter()
            try:
                candidates = self.lsh_index.candidates(query_sketches)
            except Exception as exc:
                raise LSHIndexError(
                    f"LSH candidate lookup failed: {exc}"
                ) from exc
            candidates &= universe
            _M_CANDIDATES.observe(len(candidates))
            if trace is not None:
                trace.add_stage(
                    "lsh_lookup", time.perf_counter() - filter_started
                )
                trace.add_count("candidates", len(candidates))
            return self._rank(query, candidates, top_k, exclude_self, trace)
        raise ValueError(f"unsupported method {method!r}")

    def query_many(
        self,
        queries: Sequence[ObjectSignature],
        top_k: int = 10,
        method: SearchMethod = SearchMethod.FILTERING,
        exclude_self: bool = False,
        restrict_to: Optional[Sequence[int]] = None,
        cascade: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> List[List[SearchResult]]:
        """Answer a batch of queries; returns one result list per query.

        For ``FILTERING`` the sketch scans of *all* queries are fused:
        every query's top-``r`` segment sketches are stacked into one
        matrix and the whole segment store is streamed through
        :func:`~repro.core.bitvector.hamming_many_to_many` exactly once,
        so the per-query scan cost is amortized across the batch (the
        database passes through the cache once instead of once per
        query).  Candidate ranking then fans out over a
        ``ThreadPoolExecutor`` — the ``SegmentStore`` snapshot/lock
        design permits concurrent scans during inserts, so batches can
        run while acquisition threads keep adding objects.  Other search
        methods fan the full per-query path out over the pool.
        """
        queries = list(queries)
        if not queries:
            return []
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if not self._objects:
            return [[] for _ in queries]
        workers = max_workers if max_workers is not None else min(8, len(queries))
        if method is not SearchMethod.FILTERING:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(
                        lambda q: self.query(
                            q, top_k=top_k, method=method,
                            exclude_self=exclude_self, restrict_to=restrict_to,
                            cascade=cascade,
                        ),
                        queries,
                    )
                )
        universe = (
            set(self._objects)
            if restrict_to is None
            else {i for i in restrict_to if i in self._objects}
        )
        started = time.perf_counter()
        trace = self.tracer.begin(method.value, len(queries))
        # One concatenated sketching pass for the whole batch, then one
        # fused filtering scan over the store for every query at once.
        sketch_started = time.perf_counter()
        all_sketches = self.sketcher.sketch_many(
            np.concatenate([q.features for q in queries], axis=0)
        )
        splits = np.cumsum([q.num_segments for q in queries])[:-1]
        sketches_list = np.split(all_sketches, splits)
        if trace is not None:
            trace.add_stage("sketch", time.perf_counter() - sketch_started)
        filter_started = time.perf_counter()
        candidate_sets = self._filter_candidates(
            queries, sketches_list, trace=trace
        )
        filter_seconds = time.perf_counter() - filter_started
        _M_FILTER_SECONDS.observe(filter_seconds)
        if trace is not None:
            trace.add_stage("filter", filter_seconds)

        # Per-slot writes from the ranking threads; the trace and the
        # rank metrics are only updated after the pool joins (the trace
        # is not thread-safe, and one merged RankStats keeps the metric
        # update atomic per batch).
        slot_stats: List[Optional[RankStats]] = [None] * len(queries)

        def _finish(index: int) -> List[SearchResult]:
            query = queries[index]
            candidates = candidate_sets[index] & universe
            _M_CANDIDATES.observe(len(candidates))
            if cascade is not None and cascade > 0 and len(candidates) > cascade:
                candidates = self._cascade_prune(
                    query, sketches_list[index], candidates, cascade,
                    exclude_self,
                )
            results, stats = rank_candidates_many(
                query, candidates, self._objects, self.plugin.obj_distance,
                top_k=top_k, exclude_self=exclude_self,
                params=self.rank_params,
            )
            slot_stats[index] = stats
            return results

        rank_started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            all_results = list(pool.map(_finish, range(len(queries))))
        batch_stats = RankStats()
        for stats in slot_stats:
            if stats is not None:
                batch_stats.merge(stats)
        self._note_rank(trace, time.perf_counter() - rank_started, batch_stats)
        elapsed = time.perf_counter() - started
        _M_BATCH_QUERIES.inc(len(queries))
        _M_BATCH_SECONDS.observe(elapsed)
        if trace is not None:
            self.tracer.finish(trace, elapsed)
        else:
            self.tracer.observe_total(method.value, len(queries), elapsed)
        return all_results

    def query_by_id(self, object_id: int, **kwargs) -> List[SearchResult]:
        """Query using an already-inserted object as the seed."""
        return self.query(self._objects[object_id], **kwargs)

    def query_file(self, filename: str, **kwargs) -> List[SearchResult]:
        """Query with a file as the seed: the query data runs through
        the same segmentation and feature extraction unit as data input
        (Figure 3's query path)."""
        return self.query(self.plugin.extract(filename), **kwargs)

    def _rank_by_sketch(
        self,
        query: ObjectSignature,
        query_sketches: np.ndarray,
        universe: set,
        top_k: int,
        exclude_self: bool,
    ) -> List[SearchResult]:
        """BruteForceSketch: object distance with Hamming segment costs.

        For multi-segment objects this is EMD over the Hamming cost
        matrix; single-segment objects reduce to plain sketch Hamming,
        which vectorizes into one XOR+popcount scan over the whole
        sketch database — the regime where the paper reports its ~4x
        shape-search speedup.
        """
        if query.num_segments == 1 and len(self._store) == len(self._objects):
            # Every object (and the query) has exactly one segment: the
            # segment store's rows are the per-object sketches.
            owners, sketch_matrix = self._store.snapshot()
            dists = hamming_to_many(query_sketches[0], sketch_matrix)
            results = [
                SearchResult(float(d), int(oid))
                for d, oid in zip(dists, owners)
                if int(oid) in universe
                and not (exclude_self and int(oid) == query.object_id)
            ]
            results.sort()
            return results[:top_k]
        # Multi-segment: one batched Hamming pass over the whole segment
        # store, then per-object cost matrices come from owner-sorted
        # prefix slices instead of a hamming_to_many call per object.
        group_owners, starts, dists = self._owner_sorted_scan(query_sketches)
        ends = np.append(starts[1:], dists.shape[1])
        results: List[SearchResult] = []
        for group, object_id in enumerate(group_owners):
            object_id = int(object_id)
            if object_id not in universe:
                continue
            if exclude_self and object_id == query.object_id:
                continue
            cand = self._objects.get(object_id)
            if cand is None:
                continue
            costs = dists[:, starts[group] : ends[group]].astype(np.float64)
            if costs.shape == (1, 1):
                dist = float(costs[0, 0])
            else:
                dist = solve_transport(query.weights, cand.weights, costs).cost
            results.append(SearchResult(dist, object_id))
        results.sort()
        return results[:top_k]

    def _owner_sorted_scan(
        self, query_sketches: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One batched Hamming scan over the store, grouped by owner.

        Returns ``(group_owners, starts, dists)``: ``dists`` is the
        ``(num_query_segments, n_live_rows)`` distance matrix with
        columns sorted by owning object (segment insertion order is
        preserved inside each group, matching the owner's signature row
        order), ``starts[i]`` is the first column of ``group_owners[i]``'s
        slice, and tombstoned rows are dropped before the scan.
        """
        owners, sketch_matrix = self._store.snapshot()
        alive = np.nonzero(owners >= 0)[0]
        n_queries = np.atleast_2d(query_sketches).shape[0]
        if alive.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty((n_queries, 0), dtype=np.uint32)
        order = alive[np.argsort(owners[alive], kind="stable")]
        dists = hamming_many_to_many(query_sketches, sketch_matrix[order])
        group_owners, starts = np.unique(owners[order], return_index=True)
        return group_owners, starts, dists

    def _cascade_prune(
        self,
        query: ObjectSignature,
        query_sketches: np.ndarray,
        candidates: set,
        cascade: int,
        exclude_self: bool,
    ) -> set:
        """Keep the ``cascade`` candidates with the smallest *relaxed*
        sketch distance.

        The proxy is the classical relaxed EMD lower bound: each query
        segment is matched to its nearest candidate segment regardless of
        capacity, ``sum_i w_i min_j H(q_i, c_j)``.  All candidates are
        scored from one batched Hamming pass over the owner-sorted
        segment store (grouped ``minimum.reduceat`` instead of a
        ``hamming_to_many`` call per object), and no flow solve runs, so
        it is far cheaper than the exact object distance it stands in
        for.
        """
        group_owners, starts, dists = self._owner_sorted_scan(query_sketches)
        if group_owners.size == 0:
            return set()
        # (r, n_groups): per query segment, the nearest segment of each object.
        group_mins = np.minimum.reduceat(dists, starts, axis=1)
        proxies = np.asarray(query.weights, dtype=np.float64) @ group_mins
        scored = [
            (float(proxies[group]), int(object_id))
            for group, object_id in enumerate(group_owners)
            if int(object_id) in candidates
            and not (exclude_self and int(object_id) == query.object_id)
        ]
        scored.sort()
        return {object_id for _proxy, object_id in scored[:cascade]}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the parallel scan pool, release its arena, and stop
        the background compactor if one is running.

        Idempotent; the engine keeps answering queries serially after
        (and will rebuild the pool on demand if still enabled).
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        compactor, self._compactor = self._compactor, None
        if compactor is not None:
            compactor.stop()

    def __enter__(self) -> "SimilaritySearchEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def get_object(self, object_id: int) -> ObjectSignature:
        return self._objects[object_id]

    @property
    def objects(self) -> Mapping[int, ObjectSignature]:
        return self._objects

    @property
    def next_id(self) -> int:
        """The id the next auto-assigned insert would take.

        A cluster coordinator routing writes by object id seeds its
        global id counter from the maximum of its backends' ``next_id``
        so coordinator-assigned ids never collide with existing objects.
        """
        return self._next_id

    def stats(self) -> EngineStats:
        num_segments = len(self._store)
        dim = self.plugin.meta.dim
        feature_bits = dim * 32  # paper counts feature vectors as 32-bit floats
        return EngineStats(
            num_objects=len(self._objects),
            num_segments=num_segments,
            feature_bits_per_vector=feature_bits,
            sketch_bits_per_vector=self.sketcher.n_bits,
            feature_bytes=num_segments * dim * 4,
            sketch_bytes=self._store.sketch_bytes,
        )
