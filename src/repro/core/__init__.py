"""Core similarity search engine — the paper's primary contribution.

Public surface: object representation (:class:`ObjectSignature`), sketch
construction (:class:`SketchConstructor`), distances (including EMD),
the two-phase filter/rank pipeline, and the engine that composes them.
"""

from .bitvector import (
    hamming_distance,
    hamming_many_to_many,
    hamming_to_many,
    pack_bits,
    unpack_bits,
)
from .distance import (
    chi_square_distance,
    cosine_distance,
    get_distance,
    histogram_intersection_distance,
    l1_distance,
    l2_distance,
    lp_distance,
    pearson_distance,
    register_distance,
    spearman_distance,
    weighted_l1_distance,
)
from .emd import (
    EMDDistance,
    EMDParams,
    NonFiniteDistanceError,
    emd,
    emd_lower_bound_centroid,
    emd_lower_bound_rowcol,
    emd_to_many,
)
from .engine import (
    EngineStats,
    LSHIndexError,
    SearchMethod,
    SimilaritySearchEngine,
)
from .filtering import (
    FilterParams,
    SegmentStore,
    get_threshold_fn,
    register_threshold_fn,
    select_k_smallest,
    sketch_filter,
    sketch_filter_many,
    sketch_filter_reference,
)
from .lshindex import LSHIndex, LSHParams
from .parallel import (
    ParallelConfig,
    ParallelFilterPool,
    ParallelScanError,
    QueryResultCache,
    parallel_filter_candidates,
    parallel_sketch_filter,
    parallel_sketch_filter_many,
)
from .plugin import DataTypePlugin, get_plugin, list_plugins, register_plugin
from .ranking import (
    RankParams,
    RankStats,
    SearchResult,
    rank_candidates,
    rank_candidates_many,
)
from .sketch import SketchConstructor, SketchParams, estimate_l1_from_hamming
from .transport import TransportResult, solve_transport
from .types import (
    Dataset,
    FeatureMeta,
    ObjectSignature,
    meta_from_dataset,
    normalize_weights,
)

__all__ = [
    "Dataset",
    "DataTypePlugin",
    "EMDDistance",
    "EMDParams",
    "EngineStats",
    "FeatureMeta",
    "FilterParams",
    "LSHIndex",
    "LSHIndexError",
    "LSHParams",
    "NonFiniteDistanceError",
    "ObjectSignature",
    "ParallelConfig",
    "ParallelFilterPool",
    "ParallelScanError",
    "QueryResultCache",
    "RankParams",
    "RankStats",
    "SearchMethod",
    "SearchResult",
    "SegmentStore",
    "SimilaritySearchEngine",
    "SketchConstructor",
    "SketchParams",
    "TransportResult",
    "chi_square_distance",
    "cosine_distance",
    "histogram_intersection_distance",
    "emd",
    "emd_lower_bound_centroid",
    "emd_lower_bound_rowcol",
    "emd_to_many",
    "estimate_l1_from_hamming",
    "get_distance",
    "get_plugin",
    "get_threshold_fn",
    "hamming_distance",
    "hamming_many_to_many",
    "hamming_to_many",
    "l1_distance",
    "l2_distance",
    "list_plugins",
    "lp_distance",
    "meta_from_dataset",
    "normalize_weights",
    "pack_bits",
    "parallel_filter_candidates",
    "parallel_sketch_filter",
    "parallel_sketch_filter_many",
    "pearson_distance",
    "rank_candidates",
    "rank_candidates_many",
    "register_distance",
    "register_plugin",
    "register_threshold_fn",
    "select_k_smallest",
    "sketch_filter",
    "sketch_filter_many",
    "sketch_filter_reference",
    "solve_transport",
    "spearman_distance",
    "unpack_bits",
    "weighted_l1_distance",
]
