"""Earth Mover's Distance — the toolkit's default object distance function.

Section 4.2.2: given objects ``X`` (m segments) and ``Y`` (n segments)
with normalized weights, ``EMD(X, Y) = min sum f_ij d(X_i, Y_j)`` subject
to the transportation constraints.  Because weights are normalized to sum
to one, the problem is balanced and the EMD equals the total flow cost.

The paper's image system uses an *improved* EMD from Lv/Charikar/Li
(CIKM'04): segment distances are thresholded before the EMD computation
(limiting the influence of outlier segments), and segment weights may be
transformed by a square-root function before normalization.  Both appear
here as :class:`EMDParams` knobs so downstream users can ablate them.

Beyond the pairwise :func:`emd`, this module carries the batched ranking
machinery: :func:`emd_to_many` evaluates one query against many
candidates from a single packed cost computation, and
:func:`emd_lower_bound_centroid` / :func:`emd_lower_bound_rowcol` give
cheap provable lower bounds on the (improved) EMD that the ranking
cascade uses to skip most transportation solves entirely (see
docs/PERFORMANCE.md, "Ranking cascade").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .transport import solve_transport
from .types import ObjectSignature, normalize_weights

__all__ = [
    "EMDParams",
    "NonFiniteDistanceError",
    "emd",
    "emd_to_many",
    "emd_lower_bound_centroid",
    "emd_lower_bound_rowcol",
    "pairwise_segment_distances",
    "EMDDistance",
]

GroundDistanceMatrix = Callable[[np.ndarray, np.ndarray], np.ndarray]

# Cap on the (m, block, D) broadcast temporary of the vectorized l1
# kernel; blocks of database rows keep it cache-friendly at packed
# many-candidate shapes without changing any per-cell value.
_L1_BLOCK_BYTES = 8 << 20

# Relative safety margin folded into the lower bounds.  The bounds are
# exact mathematics over exact reals; in float64 the bound and the
# simplex accumulate rounding independently, so a freshly computed bound
# could exceed the true EMD by a few ulps in degenerate cases (e.g. a
# single-segment pair, where bound and distance are the same sum taken
# in two different orders).  Shaving 1e-9 relative (plus an absolute
# epsilon for exact zeros) keeps the bounds provably conservative at
# float precision while costing essentially no pruning power.
_BOUND_SAFETY_REL = 1e-9
_BOUND_SAFETY_ABS = 1e-12


class NonFiniteDistanceError(ValueError):
    """Segment ground distances evaluated to NaN or infinity.

    Raised by :func:`pairwise_segment_distances` (and everything built on
    it) instead of letting the transportation simplex pivot on garbage
    costs.  ``object_id`` carries the offending candidate's id when the
    caller knew it — the engine surfaces it so a poisoned insert can be
    found and removed.
    """

    def __init__(self, message: str, object_id: Optional[int] = None) -> None:
        super().__init__(message)
        self.object_id = object_id


def _require_finite_costs(
    costs: np.ndarray, object_id: Optional[int] = None
) -> None:
    """Reject NaN/inf ground distances before they reach the simplex."""
    if np.isfinite(costs).all():
        return
    bad = int((~np.isfinite(costs)).sum())
    who = f" (candidate object {object_id})" if object_id is not None else ""
    raise NonFiniteDistanceError(
        f"{bad} of {costs.size} segment ground distances are NaN/inf{who}; "
        "feature vectors must be finite",
        object_id=object_id,
    )


def _l1_cost_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(m, n)`` l1 distances via one broadcast kernel, blocked over ``b``.

    Per-cell values are bit-identical to the historical per-row
    ``l1_to_many`` loop (same element order, same pairwise reduction over
    the feature axis), so every consumer — including the exact ranking
    path — sees unchanged distances.
    """
    m, d = a.shape
    n = b.shape[0]
    block = max(1, _L1_BLOCK_BYTES // max(1, m * d * 8))
    if n <= block:
        return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
    out = np.empty((m, n), dtype=np.float64)
    for start in range(0, n, block):
        stop = min(start + block, n)
        out[:, start:stop] = np.abs(
            a[:, None, :] - b[None, start:stop, :]
        ).sum(axis=2)
    return out


def pairwise_segment_distances(
    features_a: np.ndarray,
    features_b: np.ndarray,
    ground: Optional[GroundDistanceMatrix] = None,
    object_id: Optional[int] = None,
) -> np.ndarray:
    """``(m, n)`` matrix of ground distances between two segment sets.

    ``ground`` maps ``(query_matrix, db_matrix) -> distance matrix``; the
    default is l1, matching the paper's image and audio systems, computed
    by one vectorized broadcast kernel.  Non-finite distances (NaN/inf
    feature rows, or a ground function returning them) raise
    :class:`NonFiniteDistanceError` — the transportation simplex must
    never pivot on garbage costs.  ``object_id`` tags the error with the
    candidate the ``features_b`` rows belong to.
    """
    a = np.atleast_2d(np.asarray(features_a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(features_b, dtype=np.float64))
    if ground is not None:
        out = np.asarray(ground(a, b), dtype=np.float64)
        if out.shape != (a.shape[0], b.shape[0]):
            raise ValueError(
                f"ground distance returned {out.shape}, expected "
                f"{(a.shape[0], b.shape[0])}"
            )
        _require_finite_costs(out, object_id)
        return out
    out = _l1_cost_matrix(a, b)
    _require_finite_costs(out, object_id)
    return out


@dataclass(frozen=True)
class EMDParams:
    """Configuration of the (improved) EMD object distance.

    Parameters
    ----------
    threshold:
        If set, segment distances are clipped at this value before the
        flow computation ("thresholded EMD", section 5.1).  ``None``
        disables thresholding (plain EMD).
    weight_transform:
        Optional transform applied to raw segment weights before
        re-normalization; the CIKM'04 improvement uses ``sqrt``.
    ground:
        Ground (segment) distance as a matrix function; default l1.
    """

    threshold: Optional[float] = None
    weight_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None
    ground: Optional[GroundDistanceMatrix] = None

    def effective_weights(self, weights: np.ndarray) -> np.ndarray:
        if self.weight_transform is None:
            return np.asarray(weights, dtype=np.float64)
        return normalize_weights(self.weight_transform(np.asarray(weights)))

    def apply_threshold(self, costs: np.ndarray) -> np.ndarray:
        """Clip a cost matrix at the threshold (validating it), or pass
        it through unchanged when thresholding is disabled."""
        if self.threshold is None:
            return costs
        if self.threshold <= 0:
            raise ValueError("EMD threshold must be positive")
        return np.minimum(costs, self.threshold)


def emd(
    obj_a: ObjectSignature,
    obj_b: ObjectSignature,
    params: Optional[EMDParams] = None,
) -> float:
    """Earth Mover's Distance between two objects.

    Returns 0.0 when either object carries no mass.  The result is exact
    (transportation simplex), not an approximation.
    """
    params = params or EMDParams()
    costs = pairwise_segment_distances(
        obj_a.features, obj_b.features, params.ground,
        object_id=obj_b.object_id,
    )
    costs = params.apply_threshold(costs)
    supply = params.effective_weights(obj_a.weights)
    demand = params.effective_weights(obj_b.weights)
    result = solve_transport(supply, demand, costs)
    return result.cost


def packed_cost_matrices(
    query: ObjectSignature,
    candidates: Sequence[ObjectSignature],
    params: Optional[EMDParams] = None,
    dedup: bool = True,
) -> List[np.ndarray]:
    """Thresholded ``(m, n_i)`` cost matrices for one query against many
    candidates, each bit-identical to what :func:`emd` computes.

    For the default l1 ground distance, every candidate's segments are
    packed into one matrix and a single broadcast kernel produces all
    cost matrices at once; with ``dedup``, segment rows repeated across
    candidates (bitwise-equal feature vectors) are evaluated once and
    gathered back.  A custom ``ground`` is called once per candidate with
    exactly the candidate's own feature matrix — an arbitrary callable is
    only guaranteed bit-stable on the inputs the exact path gives it.
    """
    params = params or EMDParams()
    if not candidates:
        return []
    if params.ground is not None:
        return [
            params.apply_threshold(
                pairwise_segment_distances(
                    query.features, cand.features, params.ground,
                    object_id=cand.object_id,
                )
            )
            for cand in candidates
        ]
    q = np.atleast_2d(np.asarray(query.features, dtype=np.float64))
    packed = np.concatenate(
        [np.atleast_2d(np.asarray(c.features, dtype=np.float64))
         for c in candidates],
        axis=0,
    )
    if dedup and packed.shape[0] > 1:
        unique, inverse = np.unique(packed, axis=0, return_inverse=True)
        if unique.shape[0] < packed.shape[0]:
            all_costs = _l1_cost_matrix(q, unique)[:, inverse.ravel()]
        else:
            all_costs = _l1_cost_matrix(q, packed)
    else:
        all_costs = _l1_cost_matrix(q, packed)
    all_costs = params.apply_threshold(all_costs)
    matrices: List[np.ndarray] = []
    offset = 0
    for cand in candidates:
        n = cand.num_segments
        costs = all_costs[:, offset:offset + n]
        offset += n
        _require_finite_costs(costs, object_id=cand.object_id)
        matrices.append(costs)
    return matrices


def emd_to_many(
    query: ObjectSignature,
    candidates: Sequence[ObjectSignature],
    params: Optional[EMDParams] = None,
    dedup: bool = True,
) -> np.ndarray:
    """Exact EMD from ``query`` to every candidate, batched.

    Equivalent to ``[emd(query, c, params) for c in candidates]`` —
    same costs, same solver, bit-identical distances — but all ground
    distances come from one packed computation per batch
    (:func:`packed_cost_matrices`) instead of one small kernel dispatch
    per candidate.
    """
    params = params or EMDParams()
    matrices = packed_cost_matrices(query, candidates, params, dedup=dedup)
    supply = params.effective_weights(query.weights)
    return np.array(
        [
            solve_transport(
                supply, params.effective_weights(cand.weights), costs
            ).cost
            for cand, costs in zip(candidates, matrices)
        ],
        dtype=np.float64,
    )


def _shave(bound: float) -> float:
    """Apply the float-safety margin; bounds never go negative."""
    return max(0.0, bound * (1.0 - _BOUND_SAFETY_REL) - _BOUND_SAFETY_ABS)


def emd_lower_bound_centroid(
    query: ObjectSignature,
    candidate: ObjectSignature,
    params: Optional[EMDParams] = None,
) -> float:
    """Weighted-l1-of-centroids lower bound on ``emd(query, candidate)``.

    For a norm-induced ground distance, any feasible flow satisfies
    ``sum f_ij ||x_i - y_j|| >= ||sum_i s_i x_i - sum_j d_j y_j||``
    (Jensen on the norm), so the l1 distance between the effective-weight
    centroids lower-bounds the plain EMD.  The bound is only valid for
    the built-in l1 ground (a custom ``ground`` need not be a norm) and
    only without thresholding — clipping costs at ``t`` can push the
    optimal flow cost *below* the centroid distance — so those
    configurations return the trivial bound 0.0.  ``weight_transform`` is
    respected by using the same effective weights the EMD uses.
    """
    params = params or EMDParams()
    if params.ground is not None or params.threshold is not None:
        return 0.0
    supply = params.effective_weights(query.weights)
    demand = params.effective_weights(candidate.weights)
    total_s = float(supply.sum())
    total_d = float(demand.sum())
    if total_s <= 0.0 or total_d <= 0.0:
        return 0.0
    # solve_transport rescales demand to balance the problem exactly;
    # the bound must compare centroids of the same rescaled masses.
    demand = demand * (total_s / total_d)
    q_centroid = supply @ np.atleast_2d(query.features)
    c_centroid = demand @ np.atleast_2d(candidate.features)
    return _shave(float(np.abs(q_centroid - c_centroid).sum()))


def rowcol_bound_from_costs(
    costs: np.ndarray, supply: np.ndarray, demand: np.ndarray
) -> float:
    """Row/column-minima lower bound given an already-built cost matrix.

    Every feasible flow ships ``supply_i`` out of row ``i`` at per-unit
    cost at least ``min_j costs[i, j]`` (and symmetrically for columns),
    so ``max(supply @ row_mins, demand @ col_mins)`` lower-bounds the
    optimal cost of *that* matrix.  Because it is computed on the final
    (thresholded) costs, it is valid for every :class:`EMDParams`
    configuration, including custom grounds.
    """
    supply = np.asarray(supply, dtype=np.float64)
    demand = np.asarray(demand, dtype=np.float64)
    total_s = float(supply.sum())
    total_d = float(demand.sum())
    if total_s <= 0.0 or total_d <= 0.0 or costs.size == 0:
        return 0.0
    row_bound = float(supply @ costs.min(axis=1))
    col_bound = float(demand @ costs.min(axis=0)) * (total_s / total_d)
    return _shave(max(row_bound, col_bound))


def emd_lower_bound_rowcol(
    query: ObjectSignature,
    candidate: ObjectSignature,
    params: Optional[EMDParams] = None,
    costs: Optional[np.ndarray] = None,
) -> float:
    """Thresholded row/column-minima lower bound on ``emd(query, candidate)``.

    ``costs`` may carry a precomputed thresholded cost matrix (the
    ranking cascade reuses the matrices it already built); otherwise the
    matrix is computed here exactly as :func:`emd` would.
    """
    params = params or EMDParams()
    if costs is None:
        costs = params.apply_threshold(
            pairwise_segment_distances(
                query.features, candidate.features, params.ground,
                object_id=candidate.object_id,
            )
        )
    return rowcol_bound_from_costs(
        costs,
        params.effective_weights(query.weights),
        params.effective_weights(candidate.weights),
    )


class EMDDistance:
    """Callable object distance ``(ObjectSignature, ObjectSignature) -> float``.

    This is the shape the ranking unit expects for ``obj_distance`` and
    the default the engine installs when the plug-in supplies none.  The
    batched ranking cascade recognizes this type and replaces the
    per-candidate calls with :func:`emd_to_many` plus lower-bound
    pruning, producing identical results.
    """

    def __init__(self, params: Optional[EMDParams] = None) -> None:
        self.params = params or EMDParams()

    def __call__(self, obj_a: ObjectSignature, obj_b: ObjectSignature) -> float:
        return emd(obj_a, obj_b, self.params)

    def __repr__(self) -> str:
        return (
            f"EMDDistance(threshold={self.params.threshold}, "
            f"sqrt_weights={self.params.weight_transform is not None})"
        )
