"""Earth Mover's Distance — the toolkit's default object distance function.

Section 4.2.2: given objects ``X`` (m segments) and ``Y`` (n segments)
with normalized weights, ``EMD(X, Y) = min sum f_ij d(X_i, Y_j)`` subject
to the transportation constraints.  Because weights are normalized to sum
to one, the problem is balanced and the EMD equals the total flow cost.

The paper's image system uses an *improved* EMD from Lv/Charikar/Li
(CIKM'04): segment distances are thresholded before the EMD computation
(limiting the influence of outlier segments), and segment weights may be
transformed by a square-root function before normalization.  Both appear
here as :class:`EMDParams` knobs so downstream users can ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .distance import l1_to_many
from .transport import solve_transport
from .types import ObjectSignature, normalize_weights

__all__ = ["EMDParams", "emd", "pairwise_segment_distances", "EMDDistance"]

GroundDistanceMatrix = Callable[[np.ndarray, np.ndarray], np.ndarray]


def pairwise_segment_distances(
    features_a: np.ndarray,
    features_b: np.ndarray,
    ground: Optional[GroundDistanceMatrix] = None,
) -> np.ndarray:
    """``(m, n)`` matrix of ground distances between two segment sets.

    ``ground`` maps ``(query_matrix, db_matrix) -> distance matrix``; the
    default is l1, matching the paper's image and audio systems.
    """
    a = np.atleast_2d(np.asarray(features_a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(features_b, dtype=np.float64))
    if ground is not None:
        out = np.asarray(ground(a, b), dtype=np.float64)
        if out.shape != (a.shape[0], b.shape[0]):
            raise ValueError(
                f"ground distance returned {out.shape}, expected "
                f"{(a.shape[0], b.shape[0])}"
            )
        return out
    return np.stack([l1_to_many(row, b) for row in a])


@dataclass(frozen=True)
class EMDParams:
    """Configuration of the (improved) EMD object distance.

    Parameters
    ----------
    threshold:
        If set, segment distances are clipped at this value before the
        flow computation ("thresholded EMD", section 5.1).  ``None``
        disables thresholding (plain EMD).
    weight_transform:
        Optional transform applied to raw segment weights before
        re-normalization; the CIKM'04 improvement uses ``sqrt``.
    ground:
        Ground (segment) distance as a matrix function; default l1.
    """

    threshold: Optional[float] = None
    weight_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None
    ground: Optional[GroundDistanceMatrix] = None

    def effective_weights(self, weights: np.ndarray) -> np.ndarray:
        if self.weight_transform is None:
            return np.asarray(weights, dtype=np.float64)
        return normalize_weights(self.weight_transform(np.asarray(weights)))


def emd(
    obj_a: ObjectSignature,
    obj_b: ObjectSignature,
    params: Optional[EMDParams] = None,
) -> float:
    """Earth Mover's Distance between two objects.

    Returns 0.0 when either object carries no mass.  The result is exact
    (transportation simplex), not an approximation.
    """
    params = params or EMDParams()
    costs = pairwise_segment_distances(
        obj_a.features, obj_b.features, params.ground
    )
    if params.threshold is not None:
        if params.threshold <= 0:
            raise ValueError("EMD threshold must be positive")
        costs = np.minimum(costs, params.threshold)
    supply = params.effective_weights(obj_a.weights)
    demand = params.effective_weights(obj_b.weights)
    result = solve_transport(supply, demand, costs)
    return result.cost


class EMDDistance:
    """Callable object distance ``(ObjectSignature, ObjectSignature) -> float``.

    This is the shape the ranking unit expects for ``obj_distance`` and
    the default the engine installs when the plug-in supplies none.
    """

    def __init__(self, params: Optional[EMDParams] = None) -> None:
        self.params = params or EMDParams()

    def __call__(self, obj_a: ObjectSignature, obj_b: ObjectSignature) -> float:
        return emd(obj_a, obj_b, self.params)

    def __repr__(self) -> str:
        return (
            f"EMDDistance(threshold={self.params.threshold}, "
            f"sqrt_weights={self.params.weight_transform is not None})"
        )
