"""Filtering unit — first phase of the two-step similarity search.

Section 4.1.1: given a query object ``Q``, select the ``r`` segments of
``Q`` with the highest weights.  A database segment ``T_j`` matches a
high-weight query segment ``Q_i`` if it is among the ``k`` nearest
segments to ``Q_i`` *and* its distance is within a threshold that is a
decreasing function of ``w(Q_i)``.  Objects owning at least one matching
segment form the candidate set handed to the ranking unit.

The scan streams over all segment sketches with Hamming distance (the
default), or — when ``use_sketches`` is off — over the raw feature
vectors with the plug-in segment distance.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..observability import metrics as _metrics
from .bitvector import hamming_many_to_many, hamming_to_many
from .types import ObjectSignature

__all__ = [
    "ArenaCompactor",
    "ArenaDelta",
    "FilterParams",
    "SegmentStore",
    "get_threshold_fn",
    "register_threshold_fn",
    "select_k_smallest",
    "sketch_filter",
    "sketch_filter_many",
    "sketch_filter_reference",
]

# Arena telemetry (see docs/OBSERVABILITY.md).  Handles are created once
# at import; the registry's reset() zeroes them in place.
_M_ARENA_APPENDS = _metrics.counter("arena.appends")
_M_ARENA_CHUNKS = _metrics.gauge("arena.chunks")
_M_ARENA_COMPACTIONS = _metrics.counter("arena.compactions")
_M_ARENA_ROWS = _metrics.gauge("arena.rows")
_M_ARENA_DEAD_ROWS = _metrics.gauge("arena.dead_rows")
_M_ARENA_COMPACT_SECONDS = _metrics.histogram("arena.compaction_seconds")
_M_ARENA_COMPACT_ERRORS = _metrics.counter("errors_absorbed.arena_compactor")


def default_threshold_fn(weight: float) -> float:
    """Default multiplier for the per-segment distance threshold.

    Decreasing in the segment weight, per the paper: heavier (more
    important) query segments must match more tightly.  Returns a factor
    in ``(0.5, 1.0]`` applied to the base threshold.
    """
    return 1.0 - 0.5 * min(max(weight, 0.0), 1.0)


def constant_threshold_fn(weight: float) -> float:
    """Weight-independent multiplier: every segment gets the base threshold."""
    return 1.0


# Named threshold functions.  ``FilterParams`` defaults to a *name* so the
# params travel across process boundaries (the parallel scan pool, the
# wire protocol's setparam) without pickling code objects; custom
# callables still work in-process but cannot be dispatched to workers.
_THRESHOLD_FNS: Dict[str, Callable[[float], float]] = {}


def register_threshold_fn(name: str, fn: Callable[[float], float]) -> None:
    """Register a named weight->multiplier function for FilterParams."""
    if not name or not isinstance(name, str):
        raise ValueError("threshold function name must be a non-empty string")
    _THRESHOLD_FNS[name] = fn


def get_threshold_fn(name: str) -> Callable[[float], float]:
    """Look up a registered threshold function by name."""
    try:
        return _THRESHOLD_FNS[name]
    except KeyError:
        raise ValueError(
            f"unknown threshold function {name!r}; registered: "
            f"{sorted(_THRESHOLD_FNS)}"
        ) from None


register_threshold_fn("default", default_threshold_fn)
register_threshold_fn("constant", constant_threshold_fn)


@dataclass(frozen=True)
class FilterParams:
    """Tuning knobs of the filtering unit.

    Parameters
    ----------
    num_query_segments:
        ``r`` — how many of the highest-weight query segments to scan for.
    candidates_per_segment:
        ``k`` — how many nearest database segments each query segment may
        contribute.
    threshold_fraction:
        Base distance threshold as a fraction of the maximum possible
        distance (sketch bits for Hamming scans).  ``None`` disables the
        threshold, keeping the pure k-NN criterion.
    threshold_fn:
        Weight-dependent multiplier on the base threshold; must be
        decreasing in the weight.  Either the name of a function added
        with :func:`register_threshold_fn` (serializable — required for
        cross-process dispatch) or a bare callable (in-process only).
    """

    num_query_segments: int = 4
    candidates_per_segment: int = 64
    threshold_fraction: Optional[float] = 0.5
    threshold_fn: Union[str, Callable[[float], float]] = "default"

    def __post_init__(self) -> None:
        if self.num_query_segments <= 0:
            raise ValueError("num_query_segments (r) must be positive")
        if self.candidates_per_segment <= 0:
            raise ValueError("candidates_per_segment (k) must be positive")
        if self.threshold_fraction is not None and not (
            0.0 < self.threshold_fraction <= 1.0
        ):
            raise ValueError("threshold_fraction must be in (0, 1]")
        if isinstance(self.threshold_fn, str):
            get_threshold_fn(self.threshold_fn)  # fail fast on unknown names
        elif not callable(self.threshold_fn):
            raise ValueError("threshold_fn must be a registered name or callable")

    def threshold_factor(self, weight: float) -> float:
        """Evaluate the (possibly named) threshold function at ``weight``."""
        fn = (
            get_threshold_fn(self.threshold_fn)
            if isinstance(self.threshold_fn, str)
            else self.threshold_fn
        )
        return fn(weight)

    @property
    def threshold_fn_name(self) -> Optional[str]:
        """Registered name of ``threshold_fn``, or ``None`` for anonymous
        callables (reverse-resolved by identity for registered callables)."""
        if isinstance(self.threshold_fn, str):
            return self.threshold_fn
        for name, fn in _THRESHOLD_FNS.items():
            if fn is self.threshold_fn:
                return name
        return None

    def require_serializable(self, context: str = "cross-process dispatch") -> None:
        """Raise with a clear message when the params cannot leave the process."""
        if self.threshold_fn_name is None:
            raise ValueError(
                f"FilterParams.threshold_fn is an unregistered callable "
                f"({self.threshold_fn!r}) and cannot be serialized for "
                f"{context}; register it with "
                f"repro.core.filtering.register_threshold_fn(name, fn) and "
                f"pass the name instead"
            )

    def to_dict(self) -> Dict[str, object]:
        """Wire/JSON representation; requires a named threshold function."""
        self.require_serializable("to_dict()")
        return {
            "num_query_segments": self.num_query_segments,
            "candidates_per_segment": self.candidates_per_segment,
            "threshold_fraction": self.threshold_fraction,
            "threshold_fn": self.threshold_fn_name,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FilterParams":
        return cls(
            num_query_segments=int(data.get("num_query_segments", 4)),
            candidates_per_segment=int(data.get("candidates_per_segment", 64)),
            threshold_fraction=(
                None
                if data.get("threshold_fraction") is None
                else float(data["threshold_fraction"])
            ),
            threshold_fn=str(data.get("threshold_fn", "default")),
        )

    def cache_key(self) -> Optional[Tuple]:
        """Stable hashable identity for result caching.

        ``None`` (uncacheable) when the threshold function is an
        unregistered callable — its identity would not survive a
        re-registration, and two processes could not agree on it.
        """
        name = self.threshold_fn_name
        if name is None:
            return None
        return (
            self.num_query_segments,
            self.candidates_per_segment,
            self.threshold_fraction,
            name,
        )


@dataclass(frozen=True)
class ArenaDelta:
    """Changes to the arena between two epochs, shippable to a pool.

    ``new_owners``/``new_sketches`` are the rows appended after
    ``base_rows`` (already carrying any tombstones that landed on them),
    and ``dead_rows`` are the *global* row indices below ``base_rows``
    that were tombstoned in the window.  Applying the delta to a copy of
    the arena at ``from_epoch`` reproduces the arena at ``to_epoch``
    bit-identically — compactions invalidate deltas entirely (the store
    returns ``None`` and consumers full-reload).
    """

    from_epoch: int
    to_epoch: int
    base_rows: int
    new_owners: np.ndarray
    new_sketches: np.ndarray
    dead_rows: np.ndarray

    @property
    def n_new(self) -> int:
        return int(self.new_owners.shape[0])


# Oldest retained entries of the append/removal delta logs; beyond this
# the floor advances and stale consumers fall back to a full reload.
_MAX_DELTA_LOG = 1024


class SegmentStore:
    """Segmented, append-only arena of every segment in the system.

    Keeps parallel capacity-grown arrays: packed sketch words, optional
    raw feature vectors, and the owning object id of each segment.
    Inserts seal an immutable chunk by writing rows past the logical end
    (``_n``) — amortized O(rows added), never a full-matrix copy — and
    deletes tombstone in place (owner -1).  Every mutation is journaled
    (chunk marks for appends, row-index lists for removals) so
    :meth:`delta_since` can hand consumers exactly the rows that changed
    between two epochs; compaction rewrites the arena and raises the
    delta floor, forcing a one-time full reload.
    """

    def __init__(self, n_words: int, dim: int, keep_features: bool = True) -> None:
        self.n_words = n_words
        self.dim = dim
        self.keep_features = keep_features
        self._cap = 0
        self._n = 0
        self._sketches = np.empty((0, n_words), dtype=np.uint64)
        self._features = np.empty((0, dim), dtype=np.float64)
        self._owners = np.empty(0, dtype=np.int64)
        self._dead = 0
        # Mutation epoch: bumped on every logical change (insert, remove,
        # compact).  Consumers that hold derived state — the parallel
        # scan pool's shared-memory shards, the query-result cache —
        # compare epochs to detect staleness instead of diffing arrays.
        self._epoch = 0
        # Delta journal.  ``_marks`` records (epoch, rows_after) per
        # sealed append chunk — chunks are contiguous, so the row count
        # at any epoch is the last mark at or before it.  ``_removals``
        # records (epoch, tombstoned global row indices); a row is
        # tombstoned at most once between compactions.  ``_delta_floor``
        # is the oldest epoch a delta can still be served from; it jumps
        # to the current epoch on compaction and advances when the logs
        # are trimmed.
        self._marks: List[Tuple[int, int]] = [(0, 0)]
        self._removals: List[Tuple[int, np.ndarray]] = []
        self._delta_floor = 0
        self._compaction_epoch = 0
        self._compactor: Optional["ArenaCompactor"] = None
        # The engine runs as one concurrent program (section 3): server
        # threads scan while acquisition threads append, so row writes
        # and journal updates are serialized here.
        self._lock = threading.RLock()

    def _grow(self, min_cap: int) -> None:
        # Doubling keeps appends amortized O(1) per row.  The old
        # allocations are left intact: snapshot views handed out earlier
        # keep reading the (immutable) rows they were cut from.
        new_cap = max(min_cap, max(64, self._cap * 2))
        sk = np.empty((new_cap, self.n_words), dtype=np.uint64)
        sk[: self._n] = self._sketches[: self._n]
        self._sketches = sk
        ow = np.full(new_cap, -1, dtype=np.int64)
        ow[: self._n] = self._owners[: self._n]
        self._owners = ow
        if self.keep_features:
            ft = np.empty((new_cap, self.dim), dtype=np.float64)
            ft[: self._n] = self._features[: self._n]
            self._features = ft
        self._cap = new_cap

    def add_object(
        self,
        object_id: int,
        sketches: np.ndarray,
        features: Optional[np.ndarray] = None,
    ) -> None:
        sketches = np.atleast_2d(np.asarray(sketches, dtype=np.uint64))
        if sketches.shape[1] != self.n_words:
            raise ValueError(
                f"expected {self.n_words}-word sketches, got {sketches.shape[1]}"
            )
        count = sketches.shape[0]
        if count == 0:
            # A zero-row matrix would register the object nowhere in the
            # scan arrays: present in the engine but invisible to every
            # filter pass.  Reject it instead of silently dropping it.
            raise ValueError(
                f"object {object_id} has no segment sketches; objects must "
                "have at least one segment to be searchable"
            )
        if self.keep_features:
            if features is None:
                raise ValueError("store keeps features but none were given")
            feats = np.atleast_2d(np.asarray(features, dtype=np.float64))
            if feats.shape != (count, self.dim):
                raise ValueError(
                    f"features must be ({count}, {self.dim}), got {feats.shape}"
                )
        with self._lock:
            start = self._n
            end = start + count
            if end > self._cap:
                self._grow(end)
            self._sketches[start:end] = sketches
            self._owners[start:end] = object_id
            if self.keep_features:
                self._features[start:end] = feats
            self._n = end
            self._epoch += 1
            self._marks.append((self._epoch, end))
            self._trim_delta_log()
            _M_ARENA_APPENDS.inc()
            _M_ARENA_ROWS.set(float(end))
            _M_ARENA_CHUNKS.set(float(len(self._marks)))

    @property
    def sketches(self) -> np.ndarray:
        with self._lock:
            return self._sketches[: self._n]

    @property
    def features(self) -> np.ndarray:
        if not self.keep_features:
            raise RuntimeError("this store was built without raw features")
        with self._lock:
            return self._features[: self._n]

    @property
    def owners(self) -> np.ndarray:
        with self._lock:
            return self._owners[: self._n]

    def snapshot(self, with_features: bool = False):
        """Atomically consistent ``(owners, sketches[, features])`` views.

        Reading the properties separately races with concurrent inserts
        (an append can grow one array between the two reads); scans must
        take both from one locked snapshot.  The views are zero-copy
        slices of the live arena: rows appended later fall outside the
        slice, and capacity growth reallocates, so a snapshot's content
        is frozen at cut time *except* for in-place tombstones, which
        remain visible — exactly the pre-arena semantics the epoch
        staleness checks are built on.
        """
        with self._lock:
            if with_features:
                if not self.keep_features:
                    raise RuntimeError("this store was built without raw features")
                return (
                    self._owners[: self._n],
                    self._sketches[: self._n],
                    self._features[: self._n],
                )
            return self._owners[: self._n], self._sketches[: self._n]

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter (insert/remove/compact each bump it)."""
        with self._lock:
            return self._epoch

    def versioned_snapshot(self):
        """``(epoch, owners, sketches)`` taken under one lock acquisition.

        The epoch identifies exactly the returned arrays' logical
        content, so derived state (shared-memory shards, cached results)
        built from this snapshot can later be staleness-checked against
        :attr:`epoch`.
        """
        with self._lock:
            return self._epoch, self._owners[: self._n], self._sketches[: self._n]

    def _rows_at(self, epoch: int) -> Optional[int]:
        """Row count of the arena as of ``epoch`` (from the chunk marks)."""
        rows: Optional[int] = None
        for e, n in self._marks:
            if e <= epoch:
                rows = n
            else:
                break
        return rows

    def delta_since(self, from_epoch: int) -> Optional[ArenaDelta]:
        """Changes between ``from_epoch`` and now, or ``None`` if a full
        reload is required (unknown epoch, trimmed journal, or a
        compaction rewrote row positions in the window)."""
        with self._lock:
            if from_epoch > self._epoch or from_epoch < self._delta_floor:
                return None
            base = self._rows_at(from_epoch)
            if base is None:
                return None
            new_owners = self._owners[base : self._n].copy()
            new_sketches = self._sketches[base : self._n].copy()
            dead: List[np.ndarray] = []
            for e, rows in self._removals:
                if e > from_epoch:
                    hit = rows[rows < base]
                    if hit.size:
                        dead.append(hit)
            dead_rows = (
                np.concatenate(dead) if dead else np.empty(0, dtype=np.int64)
            )
            return ArenaDelta(
                from_epoch=from_epoch,
                to_epoch=self._epoch,
                base_rows=base,
                new_owners=new_owners,
                new_sketches=new_sketches,
                dead_rows=dead_rows,
            )

    def _trim_delta_log(self) -> None:
        # Bound journal growth: dropping an entry means consumers older
        # than it can no longer be served a delta, so the floor advances
        # past the dropped epoch.
        while len(self._removals) > _MAX_DELTA_LOG:
            epoch, _ = self._removals.pop(0)
            self._delta_floor = max(self._delta_floor, epoch)
        while len(self._marks) > _MAX_DELTA_LOG:
            self._marks.pop(0)
            self._delta_floor = max(self._delta_floor, self._marks[0][0])
        # Marks entirely below the floor are unreachable except as the
        # baseline row count; keep exactly one at or below it.
        while len(self._marks) > 1 and self._marks[1][0] <= self._delta_floor:
            self._marks.pop(0)

    def remove_object(self, object_id: int) -> int:
        """Drop an object's segments; returns how many were removed.

        Rows are tombstoned (owner set to -1) so removal is O(n) without
        rebuilding.  With no compactor attached the store compacts
        itself inline once a quarter of its rows are dead; with an
        attached :class:`ArenaCompactor` it wakes the background thread
        instead.  Scans skip tombstoned rows via the owner check.
        """
        with self._lock:
            live = self._owners[: self._n]
            rows = np.nonzero(live == object_id)[0].astype(np.int64)
            removed = int(rows.size)
            if removed:
                live[rows] = -1
                self._dead += removed
                self._epoch += 1
                self._removals.append((self._epoch, rows))
                self._trim_delta_log()
                _M_ARENA_DEAD_ROWS.set(float(self._dead))
                if self._dead * 4 >= self._n:
                    if self._compactor is not None:
                        self._compactor.wake()
                    else:
                        self.compact()
            return removed

    def dead_fraction(self) -> float:
        """Tombstoned share of physical rows (compaction trigger input)."""
        with self._lock:
            return self._dead / self._n if self._n else 0.0

    def attach_compactor(self, compactor: Optional["ArenaCompactor"]) -> None:
        """Hand dead-row cleanup to a background compactor (``None`` to
        restore inline threshold compaction)."""
        with self._lock:
            self._compactor = compactor

    def _install_compacted(
        self,
        sketches: np.ndarray,
        owners: np.ndarray,
        features: Optional[np.ndarray],
        dead: int,
    ) -> None:
        # Caller holds the lock.  Installs a rewritten arena and resets
        # the delta journal: row positions moved, so every outstanding
        # delta consumer must full-reload (floor = new epoch).
        n = int(owners.shape[0])
        self._sketches = np.ascontiguousarray(sketches, dtype=np.uint64)
        self._owners = np.ascontiguousarray(owners, dtype=np.int64)
        if self.keep_features:
            self._features = np.ascontiguousarray(features, dtype=np.float64)
        self._cap = n
        self._n = n
        self._dead = dead
        self._epoch += 1
        self._compaction_epoch = self._epoch
        self._delta_floor = self._epoch
        self._marks = [(self._epoch, n)]
        self._removals = []
        _M_ARENA_COMPACTIONS.inc()
        _M_ARENA_ROWS.set(float(n))
        _M_ARENA_DEAD_ROWS.set(float(dead))
        _M_ARENA_CHUNKS.set(1.0)

    def compact(self) -> None:
        """Synchronously drop tombstoned rows (full rewrite under the lock).

        The background path (:meth:`maintenance_compact`) does the heavy
        row gather outside the lock; this inline variant serves explicit
        calls and stores without an attached compactor.
        """
        with self._lock:
            t0 = time.perf_counter()
            n = self._n
            alive = self._owners[:n] >= 0
            self._install_compacted(
                self._sketches[:n][alive],
                self._owners[:n][alive],
                self._features[:n][alive] if self.keep_features else None,
                dead=0,
            )
            _M_ARENA_COMPACT_SECONDS.observe(time.perf_counter() - t0)

    def maintenance_compact(self) -> bool:
        """Background compaction under a live/maintenance epoch split.

        Phase 1 (locked) marks the arena: epoch, row count, and an
        owners copy.  Phase 2 (unlocked) gathers the alive rows — the
        expensive part — reading the captured arrays' immutable prefix
        while inserts, removes, and scans proceed.  Phase 3 (locked)
        replays tombstones recorded after the mark onto the compacted
        positions, appends rows that arrived during phase 2 verbatim,
        and installs the rewrite.  Returns ``True`` if a rewrite was
        installed, ``False`` if there was nothing to do or another
        compaction landed first.
        """
        with self._lock:
            if self._dead == 0:
                return False
            mark_epoch = self._epoch
            base_compaction = self._compaction_epoch
            n0 = self._n
            owners0 = self._owners[:n0].copy()
            sk_ref = self._sketches
            ft_ref = self._features if self.keep_features else None
        # Phase 2 — outside the lock.  Rows [0:n0] of the captured
        # arrays are immutable (appends write past n0 or into a freshly
        # grown allocation; tombstones touch only the owners array,
        # which was copied), so the gather reads a stable prefix.
        t0 = time.perf_counter()
        alive = owners0 >= 0
        pos_map = np.cumsum(alive, dtype=np.int64) - 1
        new_sk = sk_ref[:n0][alive]
        new_ow = owners0[alive]
        new_ft = ft_ref[:n0][alive] if ft_ref is not None else None
        with self._lock:
            if self._compaction_epoch != base_compaction:
                return False  # another compaction landed first; abandon
            # Replay tombstones recorded after the mark: each hits a row
            # that was alive in owners0 (rows tombstone at most once),
            # so pos_map translates it to its compacted position.
            dead_after = 0
            for e, rows in self._removals:
                if e <= mark_epoch:
                    continue
                hit = rows[rows < n0]
                if hit.size:
                    new_ow[pos_map[hit]] = -1
                    dead_after += int(hit.size)
            if self._n > n0:
                tail = slice(n0, self._n)
                tail_ow = self._owners[tail].copy()
                dead_after += int((tail_ow < 0).sum())
                new_ow = np.concatenate([new_ow, tail_ow])
                new_sk = np.concatenate([new_sk, self._sketches[tail]])
                if new_ft is not None:
                    new_ft = np.concatenate([new_ft, self._features[tail]])
            self._install_compacted(new_sk, new_ow, new_ft, dead=dead_after)
            _M_ARENA_COMPACT_SECONDS.observe(time.perf_counter() - t0)
            return True

    def arena_info(self) -> Dict[str, int]:
        """Structural counters for ``stat`` and the churn bench."""
        with self._lock:
            return {
                "rows": self._n,
                "alive_rows": self._n - self._dead,
                "dead_rows": self._dead,
                "capacity": self._cap,
                "chunks": len(self._marks),
                "epoch": self._epoch,
                "compaction_epoch": self._compaction_epoch,
                "delta_floor": self._delta_floor,
            }

    def __len__(self) -> int:
        with self._lock:
            return self._n - self._dead

    @property
    def sketch_bytes(self) -> int:
        """Total bytes of packed sketch storage (the paper's metadata claim)."""
        with self._lock:
            return (self._n - self._dead) * self.n_words * 8


class ArenaCompactor:
    """Background thread that merges arena chunks and drops dead rows.

    Polls every ``interval`` seconds (and wakes immediately when the
    store crosses its dead-row threshold) and runs
    :meth:`SegmentStore.maintenance_compact` whenever the tombstoned
    fraction reaches ``dead_fraction``.  While attached, the store's
    inline threshold compaction is disabled — cleanup happens off the
    mutation path.
    """

    def __init__(
        self,
        store: SegmentStore,
        dead_fraction: float = 0.25,
        interval: float = 0.05,
    ) -> None:
        if not (0.0 < dead_fraction <= 1.0):
            raise ValueError("dead_fraction must be in (0, 1]")
        if interval <= 0.0:
            raise ValueError("interval must be positive")
        self._store = store
        self.dead_fraction = float(dead_fraction)
        self.interval = float(interval)
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._store.attach_compactor(self)
        self._thread = threading.Thread(
            target=self._run, name="arena-compactor", daemon=True
        )
        self._thread.start()

    def wake(self) -> None:
        """Request a compaction check without waiting for the next poll."""
        self._wake.set()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=10.0)
        self._thread = None
        self._store.attach_compactor(None)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def run_once(self) -> bool:
        """One compaction pass if the dead fraction warrants it."""
        if self._store.dead_fraction() >= self.dead_fraction:
            return self._store.maintenance_compact()
        return False

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.interval)
            self._wake.clear()
            if self._stop.is_set():
                break
            try:
                self.run_once()
            except Exception:
                _M_ARENA_COMPACT_ERRORS.inc()


# Cap on the composite-key scratch of `select_k_smallest`'s integer fast
# path; a handful of rows at a time keeps the key block cache-resident.
_SELECT_BLOCK_BYTES = 4 << 20


def select_k_smallest(
    dists: np.ndarray, k: int, ids: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-row column indices of the ``k`` smallest entries, deterministic.

    Ties with the k-th smallest value are admitted in ascending ``ids``
    order (``ids`` defaults to the column index), so the *set* selected
    per row is fully determined by the data — unlike a bare
    ``argpartition``, whose introselect breaks boundary ties arbitrarily.
    Every filter path (serial, fused batch, sharded parallel, reference)
    selects through this rule, which is what keeps their candidate sets
    identical even when distances tie exactly at the k-NN cutoff; the
    sharded path additionally relies on it to merge per-shard top-k lists
    without re-scanning (``ids`` carries the global row numbers there).

    Returns an ``(n_rows, min(k, n_cols))`` int64 array; the order of the
    returned columns is unspecified, only the per-row set is defined.
    """
    dists = np.atleast_2d(dists)
    n_rows, total = dists.shape
    if k >= total:
        return np.broadcast_to(np.arange(total, dtype=np.int64), dists.shape)
    if ids is None:
        id_mat = np.arange(total, dtype=np.uint64)[None, :]
        max_id = total - 1
    else:
        # (total,) shared across rows, or (n_rows, total) per-row ids —
        # the sharded merge passes per-row global row numbers.
        id_mat = np.atleast_2d(np.asarray(ids, dtype=np.uint64))
        max_id = int(id_mat.max(initial=0))
    shift = max(1, int(max_id).bit_length())
    if np.issubdtype(dists.dtype, np.integer):
        max_d = int(dists.max(initial=0))
        if max_d < (1 << (64 - shift)):
            # Composite (distance, id) key in one uint64: argpartition on
            # it is a deterministic smallest-id tie-break in a single
            # vectorized pass — the hot path for Hamming scans.  The key
            # matrix is built a few rows at a time into one reused
            # scratch block: at fused-batch shapes (~100 queries x 100k+
            # columns) a whole-matrix key temp is ~100 MB and selection
            # turns memory-bound, costing ~3x the partition itself.
            out = np.empty((n_rows, k), dtype=np.int64)
            block = max(1, _SELECT_BLOCK_BYTES // max(1, total * 8))
            scratch = np.empty((min(block, n_rows), total), dtype=np.uint64)
            sh = np.uint64(shift)
            shared_ids = id_mat.shape[0] == 1
            for start in range(0, n_rows, block):
                stop = min(start + block, n_rows)
                kb = scratch[: stop - start]
                kb[...] = dists[start:stop]
                kb <<= sh
                kb |= id_mat[0] if shared_ids else id_mat[start:stop]
                out[start:stop] = np.argpartition(kb, k - 1, axis=1)[:, :k]
            return out
    # Float distances (direct filtering) or key overflow: two-pass per row.
    out = np.empty((n_rows, k), dtype=np.int64)
    for r in range(n_rows):
        row = dists[r]
        id_row = id_mat[0] if id_mat.shape[0] == 1 else id_mat[r]
        part = np.argpartition(row, k - 1)[:k]
        cutoff = row[part].max()
        strict = np.nonzero(row < cutoff)[0]
        ties = np.nonzero(row == cutoff)[0]
        need = k - strict.size
        if ties.size > need:
            ties = ties[np.argsort(id_row[ties], kind="stable")[:need]]
        out[r, : strict.size] = strict
        out[r, strict.size :] = ties
    return out


def sketch_filter(
    query: ObjectSignature,
    query_sketches: np.ndarray,
    store: SegmentStore,
    params: FilterParams,
    n_bits: int,
    use_sketches: bool = True,
    seg_distance_to_many: Optional[
        Callable[[np.ndarray, np.ndarray], np.ndarray]
    ] = None,
    max_feature_distance: Optional[float] = None,
) -> Set[int]:
    """Run the filtering phase; returns the candidate set of object ids.

    ``query_sketches`` is the packed ``(k, n_words)`` sketch matrix of the
    query's segments (same row order as ``query.features``).  When
    ``use_sketches`` is false, ``seg_distance_to_many`` must map a query
    vector and the store's feature matrix to a distance array, and
    ``max_feature_distance`` bounds the threshold scale.

    All ``r`` top query segments are scanned in one batched pass
    (:func:`~repro.core.bitvector.hamming_many_to_many`) and the
    k-NN + threshold + owner-dedup selection runs vectorized across
    segments.  Tombstoned rows (owner -1) are masked to the dtype's
    maximum *before* the k-NN selection so dead segments never occupy
    candidate slots.  Hamming distances stay in the kernel's ``uint32``
    — argpartition's introselect is comparison-driven, so it picks the
    same indices as on a float64 copy while touching half the memory.
    :func:`sketch_filter_reference` is the per-segment implementation
    this must stay candidate-set-identical to.
    """
    if use_sketches:
        owners, sketch_matrix = store.snapshot()
    else:
        owners, sketch_matrix, feature_matrix = store.snapshot(with_features=True)
    if owners.shape[0] == 0:
        return set()
    top = query.top_segments(params.num_query_segments)
    if use_sketches:
        dists = hamming_many_to_many(query_sketches[top], sketch_matrix)
        max_scales = np.full(len(top), float(n_bits))
    else:
        if seg_distance_to_many is None:
            raise ValueError("direct filtering needs seg_distance_to_many")
        dists = np.stack(
            [
                np.asarray(
                    seg_distance_to_many(query.features[i], feature_matrix),
                    dtype=np.float64,
                )
                for i in top
            ]
        )
        max_scales = _direct_max_scales(dists, max_feature_distance)
    thresholds = _segment_thresholds(query, top, params, max_scales)
    return _select_candidates(
        dists, owners, thresholds, params.candidates_per_segment
    )


def sketch_filter_reference(
    query: ObjectSignature,
    query_sketches: np.ndarray,
    store: SegmentStore,
    params: FilterParams,
    n_bits: int,
    use_sketches: bool = True,
    seg_distance_to_many: Optional[
        Callable[[np.ndarray, np.ndarray], np.ndarray]
    ] = None,
    max_feature_distance: Optional[float] = None,
) -> Set[int]:
    """Pre-batch filtering: one full database scan per query segment.

    Kept as the ground-truth implementation: :func:`sketch_filter` must
    return an identical candidate set (the perf smoke test asserts this),
    and ``bench_query_throughput.py`` uses it as the before-side of the
    batched-kernel speedup measurement.
    """
    if use_sketches:
        owners, sketch_matrix = store.snapshot()
    else:
        owners, sketch_matrix, feature_matrix = store.snapshot(with_features=True)
    total = owners.shape[0]
    if total == 0:
        return set()
    dead = owners < 0
    n_alive = total - int(dead.sum())
    if n_alive == 0:
        return set()
    any_dead = bool(dead.any())
    k = min(params.candidates_per_segment, n_alive)
    candidates: Set[int] = set()
    for seg_idx in query.top_segments(params.num_query_segments):
        weight = float(query.weights[seg_idx])
        if use_sketches:
            dists = hamming_to_many(
                query_sketches[seg_idx], sketch_matrix
            ).astype(np.float64)
            max_scale = float(n_bits)
        else:
            if seg_distance_to_many is None:
                raise ValueError("direct filtering needs seg_distance_to_many")
            dists = np.asarray(
                seg_distance_to_many(query.features[seg_idx], feature_matrix),
                dtype=np.float64,
            )
            max_scale = (
                max_feature_distance
                if max_feature_distance is not None
                else float(dists.max(initial=1.0)) or 1.0
            )
        if any_dead:
            dists[dead] = np.inf
        nearest = select_k_smallest(dists[None, :], k)[0]
        if params.threshold_fraction is not None:
            threshold = (
                params.threshold_fraction
                * max_scale
                * params.threshold_factor(weight)
            )
            nearest = nearest[dists[nearest] <= threshold]
        hit_owners = owners[nearest]
        candidates.update(int(o) for o in np.unique(hit_owners) if o >= 0)
    return candidates


def _stack_query_rows(
    queries: Sequence[ObjectSignature],
    query_sketches_list: Sequence[np.ndarray],
    params: FilterParams,
    n_bits: int,
) -> Tuple[List[np.ndarray], np.ndarray, Optional[np.ndarray]]:
    """Stack a query batch into one scan-ready row matrix.

    Returns ``(tops, stacked, thresholds)``: each query's top-``r``
    segment indices, their sketch rows concatenated into a single
    ``(sum_of_r, n_words)`` matrix, and the per-row distance thresholds
    (``None`` when thresholding is disabled).  Shared by the serial
    fused scan and the parallel pool entry points so both paths
    threshold identically.
    """
    tops = [q.top_segments(params.num_query_segments) for q in queries]
    stacked = np.concatenate(
        [qs[top] for qs, top in zip(query_sketches_list, tops)], axis=0
    )
    if params.threshold_fraction is not None:
        thresholds = np.concatenate(
            [
                _segment_thresholds(
                    q, top, params, np.full(len(top), float(n_bits))
                )
                for q, top in zip(queries, tops)
            ]
        )
    else:
        thresholds = None
    return tops, stacked, thresholds


def sketch_filter_many(
    queries: Sequence[ObjectSignature],
    query_sketches_list: Sequence[np.ndarray],
    store: SegmentStore,
    params: FilterParams,
    n_bits: int,
) -> List[Set[int]]:
    """Filtering phase for a whole batch of queries in one fused scan.

    Every query's top-``r`` segment sketches are stacked into a single
    ``(sum_of_r, n_words)`` matrix and the segment store is streamed
    through :func:`~repro.core.bitvector.hamming_many_to_many` once for
    the entire batch; the k-NN selection and thresholding also run
    batched over all rows.  Returns one candidate set per query,
    identical to calling :func:`sketch_filter` per query on the same
    store snapshot.
    """
    queries = list(queries)
    if not queries:
        return []
    owners, sketch_matrix = store.snapshot()
    if owners.shape[0] == 0:
        return [set() for _ in queries]
    tops, stacked, thresholds = _stack_query_rows(
        queries, query_sketches_list, params, n_bits
    )
    dists = hamming_many_to_many(stacked, sketch_matrix)
    total = dists.shape[1]
    dead = owners < 0
    n_alive = total - int(dead.sum())
    if n_alive == 0:
        return [set() for _ in queries]
    if dead.any():
        dists[:, dead] = _dead_sentinel(dists.dtype)
    k = min(params.candidates_per_segment, n_alive)
    nearest = select_k_smallest(dists, k)
    within = (
        np.take_along_axis(dists, nearest, axis=1) <= thresholds[:, None]
        if thresholds is not None
        else None
    )
    results: List[Set[int]] = []
    offset = 0
    for top in tops:
        rows = slice(offset, offset + len(top))
        offset += len(top)
        if within is not None:
            hit_owners = owners[nearest[rows][within[rows]]]
        else:
            hit_owners = owners[np.asarray(nearest[rows]).ravel()]
        hit_owners = hit_owners[hit_owners >= 0]
        results.append(set(int(o) for o in np.unique(hit_owners)))
    return results


def _direct_max_scales(
    dists: np.ndarray, max_feature_distance: Optional[float]
) -> np.ndarray:
    """Per-segment threshold scale for direct (non-sketch) filtering."""
    if max_feature_distance is not None:
        return np.full(dists.shape[0], float(max_feature_distance))
    scales = dists.max(axis=1, initial=1.0)
    scales[scales == 0.0] = 1.0
    return scales


def _segment_thresholds(
    query: ObjectSignature,
    top: Sequence[int],
    params: FilterParams,
    max_scales: np.ndarray,
) -> Optional[np.ndarray]:
    """Per-segment distance thresholds, or ``None`` when disabled."""
    if params.threshold_fraction is None:
        return None
    factors = np.asarray(
        [params.threshold_factor(float(query.weights[i])) for i in top]
    )
    return params.threshold_fraction * max_scales * factors


def _dead_sentinel(dtype: np.dtype):
    """Masking value for tombstoned rows: above every real distance."""
    if np.issubdtype(dtype, np.floating):
        return np.inf
    return np.iinfo(dtype).max


def _select_candidates(
    dists: np.ndarray,
    owners: np.ndarray,
    thresholds: Optional[np.ndarray],
    candidates_per_segment: int,
) -> Set[int]:
    """Vectorized k-NN + threshold + owner-dedup over ``(r, total)`` distances.

    ``dists`` is mutated in place (tombstoned columns are masked out);
    callers pass a freshly materialized matrix.  The dtype is whatever
    the scan produced — ``uint32`` Hamming counts or ``float64`` direct
    distances — and tombstones are masked to that dtype's maximum, which
    sorts after every real distance and fails every threshold just like
    ``inf`` does.
    """
    total = dists.shape[1]
    dead = owners < 0
    n_alive = total - int(dead.sum())
    if n_alive == 0:
        return set()
    if dead.any():
        dists[:, dead] = _dead_sentinel(dists.dtype)
    k = min(candidates_per_segment, n_alive)
    nearest = select_k_smallest(dists, k)
    if thresholds is not None:
        within = np.take_along_axis(dists, nearest, axis=1) <= thresholds[:, None]
        hit_owners = owners[nearest[within]]
    else:
        hit_owners = owners[nearest.ravel()]
    hit_owners = hit_owners[hit_owners >= 0]
    return set(int(o) for o in np.unique(hit_owners))
