"""Filtering unit — first phase of the two-step similarity search.

Section 4.1.1: given a query object ``Q``, select the ``r`` segments of
``Q`` with the highest weights.  A database segment ``T_j`` matches a
high-weight query segment ``Q_i`` if it is among the ``k`` nearest
segments to ``Q_i`` *and* its distance is within a threshold that is a
decreasing function of ``w(Q_i)``.  Objects owning at least one matching
segment form the candidate set handed to the ranking unit.

The scan streams over all segment sketches with Hamming distance (the
default), or — when ``use_sketches`` is off — over the raw feature
vectors with the plug-in segment distance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from .bitvector import hamming_many_to_many, hamming_to_many
from .types import ObjectSignature

__all__ = [
    "FilterParams",
    "SegmentStore",
    "sketch_filter",
    "sketch_filter_many",
    "sketch_filter_reference",
]


def default_threshold_fn(weight: float) -> float:
    """Default multiplier for the per-segment distance threshold.

    Decreasing in the segment weight, per the paper: heavier (more
    important) query segments must match more tightly.  Returns a factor
    in ``(0.5, 1.0]`` applied to the base threshold.
    """
    return 1.0 - 0.5 * min(max(weight, 0.0), 1.0)


@dataclass(frozen=True)
class FilterParams:
    """Tuning knobs of the filtering unit.

    Parameters
    ----------
    num_query_segments:
        ``r`` — how many of the highest-weight query segments to scan for.
    candidates_per_segment:
        ``k`` — how many nearest database segments each query segment may
        contribute.
    threshold_fraction:
        Base distance threshold as a fraction of the maximum possible
        distance (sketch bits for Hamming scans).  ``None`` disables the
        threshold, keeping the pure k-NN criterion.
    threshold_fn:
        Weight-dependent multiplier on the base threshold; must be
        decreasing in the weight.
    """

    num_query_segments: int = 4
    candidates_per_segment: int = 64
    threshold_fraction: Optional[float] = 0.5
    threshold_fn: Callable[[float], float] = default_threshold_fn

    def __post_init__(self) -> None:
        if self.num_query_segments <= 0:
            raise ValueError("num_query_segments (r) must be positive")
        if self.candidates_per_segment <= 0:
            raise ValueError("candidates_per_segment (k) must be positive")
        if self.threshold_fraction is not None and not (
            0.0 < self.threshold_fraction <= 1.0
        ):
            raise ValueError("threshold_fraction must be in (0, 1]")


class SegmentStore:
    """Flat, scan-friendly store of every segment in the system.

    Keeps parallel arrays: packed sketch words, optional raw feature
    vectors, and the owning object id of each segment.  Appends buffer in
    Python lists and consolidate lazily so bulk inserts stay cheap while
    scans run over contiguous numpy arrays.
    """

    def __init__(self, n_words: int, dim: int, keep_features: bool = True) -> None:
        self.n_words = n_words
        self.dim = dim
        self.keep_features = keep_features
        self._sketches = np.empty((0, n_words), dtype=np.uint64)
        self._features = np.empty((0, dim), dtype=np.float64)
        self._owners = np.empty(0, dtype=np.int64)
        self._pending_sketches: List[np.ndarray] = []
        self._pending_features: List[np.ndarray] = []
        self._pending_owners: List[np.ndarray] = []
        self._dead = 0
        # The engine runs as one concurrent program (section 3): server
        # threads scan while acquisition threads append, so buffer
        # mutation and consolidation are serialized here.
        self._lock = threading.RLock()

    def add_object(
        self,
        object_id: int,
        sketches: np.ndarray,
        features: Optional[np.ndarray] = None,
    ) -> None:
        sketches = np.atleast_2d(np.asarray(sketches, dtype=np.uint64))
        if sketches.shape[1] != self.n_words:
            raise ValueError(
                f"expected {self.n_words}-word sketches, got {sketches.shape[1]}"
            )
        count = sketches.shape[0]
        if count == 0:
            # A zero-row matrix would register the object nowhere in the
            # scan arrays: present in the engine but invisible to every
            # filter pass.  Reject it instead of silently dropping it.
            raise ValueError(
                f"object {object_id} has no segment sketches; objects must "
                "have at least one segment to be searchable"
            )
        if self.keep_features:
            if features is None:
                raise ValueError("store keeps features but none were given")
            feats = np.atleast_2d(np.asarray(features, dtype=np.float64))
            if feats.shape != (count, self.dim):
                raise ValueError(
                    f"features must be ({count}, {self.dim}), got {feats.shape}"
                )
        with self._lock:
            self._pending_sketches.append(sketches)
            self._pending_owners.append(np.full(count, object_id, dtype=np.int64))
            if self.keep_features:
                self._pending_features.append(feats)

    def _consolidate(self) -> None:
        with self._lock:
            if not self._pending_sketches:
                return
            self._sketches = np.concatenate(
                [self._sketches] + self._pending_sketches, axis=0
            )
            self._owners = np.concatenate([self._owners] + self._pending_owners)
            self._pending_sketches.clear()
            self._pending_owners.clear()
            if self.keep_features:
                self._features = np.concatenate(
                    [self._features] + self._pending_features, axis=0
                )
                self._pending_features.clear()

    @property
    def sketches(self) -> np.ndarray:
        self._consolidate()
        return self._sketches

    @property
    def features(self) -> np.ndarray:
        if not self.keep_features:
            raise RuntimeError("this store was built without raw features")
        self._consolidate()
        return self._features

    @property
    def owners(self) -> np.ndarray:
        self._consolidate()
        return self._owners

    def snapshot(self, with_features: bool = False):
        """Atomically consistent ``(owners, sketches[, features])`` views.

        Reading the properties separately races with concurrent inserts
        (consolidation can grow one array between the two reads); scans
        must take both from one locked snapshot.
        """
        with self._lock:
            self._consolidate()
            if with_features:
                if not self.keep_features:
                    raise RuntimeError("this store was built without raw features")
                return self._owners, self._sketches, self._features
            return self._owners, self._sketches

    def remove_object(self, object_id: int) -> int:
        """Drop an object's segments; returns how many were removed.

        Rows are tombstoned (owner set to -1) so removal is O(n) without
        rebuilding; the store compacts itself once a quarter of its rows
        are dead.  Scans skip tombstoned rows via the owner check.
        """
        with self._lock:
            self._consolidate()
            mask = self._owners == object_id
            removed = int(mask.sum())
            if removed:
                self._owners[mask] = -1
                self._dead += removed
                if self._dead * 4 >= self._owners.shape[0]:
                    self.compact()
            return removed

    def compact(self) -> None:
        """Physically drop tombstoned rows."""
        with self._lock:
            self._consolidate()
            alive = self._owners >= 0
            self._sketches = self._sketches[alive]
            self._owners = self._owners[alive]
            if self.keep_features:
                self._features = self._features[alive]
            self._dead = 0

    def __len__(self) -> int:
        self._consolidate()
        return self._sketches.shape[0] - self._dead

    @property
    def sketch_bytes(self) -> int:
        """Total bytes of packed sketch storage (the paper's metadata claim)."""
        return len(self) * self.n_words * 8


def sketch_filter(
    query: ObjectSignature,
    query_sketches: np.ndarray,
    store: SegmentStore,
    params: FilterParams,
    n_bits: int,
    use_sketches: bool = True,
    seg_distance_to_many: Optional[
        Callable[[np.ndarray, np.ndarray], np.ndarray]
    ] = None,
    max_feature_distance: Optional[float] = None,
) -> Set[int]:
    """Run the filtering phase; returns the candidate set of object ids.

    ``query_sketches`` is the packed ``(k, n_words)`` sketch matrix of the
    query's segments (same row order as ``query.features``).  When
    ``use_sketches`` is false, ``seg_distance_to_many`` must map a query
    vector and the store's feature matrix to a distance array, and
    ``max_feature_distance`` bounds the threshold scale.

    All ``r`` top query segments are scanned in one batched pass
    (:func:`~repro.core.bitvector.hamming_many_to_many`) and the
    k-NN + threshold + owner-dedup selection runs vectorized across
    segments.  Tombstoned rows (owner -1) are masked to the dtype's
    maximum *before* the k-NN selection so dead segments never occupy
    candidate slots.  Hamming distances stay in the kernel's ``uint32``
    — argpartition's introselect is comparison-driven, so it picks the
    same indices as on a float64 copy while touching half the memory.
    :func:`sketch_filter_reference` is the per-segment implementation
    this must stay candidate-set-identical to.
    """
    if use_sketches:
        owners, sketch_matrix = store.snapshot()
    else:
        owners, sketch_matrix, feature_matrix = store.snapshot(with_features=True)
    if owners.shape[0] == 0:
        return set()
    top = query.top_segments(params.num_query_segments)
    if use_sketches:
        dists = hamming_many_to_many(query_sketches[top], sketch_matrix)
        max_scales = np.full(len(top), float(n_bits))
    else:
        if seg_distance_to_many is None:
            raise ValueError("direct filtering needs seg_distance_to_many")
        dists = np.stack(
            [
                np.asarray(
                    seg_distance_to_many(query.features[i], feature_matrix),
                    dtype=np.float64,
                )
                for i in top
            ]
        )
        max_scales = _direct_max_scales(dists, max_feature_distance)
    thresholds = _segment_thresholds(query, top, params, max_scales)
    return _select_candidates(
        dists, owners, thresholds, params.candidates_per_segment
    )


def sketch_filter_reference(
    query: ObjectSignature,
    query_sketches: np.ndarray,
    store: SegmentStore,
    params: FilterParams,
    n_bits: int,
    use_sketches: bool = True,
    seg_distance_to_many: Optional[
        Callable[[np.ndarray, np.ndarray], np.ndarray]
    ] = None,
    max_feature_distance: Optional[float] = None,
) -> Set[int]:
    """Pre-batch filtering: one full database scan per query segment.

    Kept as the ground-truth implementation: :func:`sketch_filter` must
    return an identical candidate set (the perf smoke test asserts this),
    and ``bench_query_throughput.py`` uses it as the before-side of the
    batched-kernel speedup measurement.
    """
    if use_sketches:
        owners, sketch_matrix = store.snapshot()
    else:
        owners, sketch_matrix, feature_matrix = store.snapshot(with_features=True)
    total = owners.shape[0]
    if total == 0:
        return set()
    dead = owners < 0
    n_alive = total - int(dead.sum())
    if n_alive == 0:
        return set()
    any_dead = bool(dead.any())
    k = min(params.candidates_per_segment, n_alive)
    candidates: Set[int] = set()
    for seg_idx in query.top_segments(params.num_query_segments):
        weight = float(query.weights[seg_idx])
        if use_sketches:
            dists = hamming_to_many(
                query_sketches[seg_idx], sketch_matrix
            ).astype(np.float64)
            max_scale = float(n_bits)
        else:
            if seg_distance_to_many is None:
                raise ValueError("direct filtering needs seg_distance_to_many")
            dists = np.asarray(
                seg_distance_to_many(query.features[seg_idx], feature_matrix),
                dtype=np.float64,
            )
            max_scale = (
                max_feature_distance
                if max_feature_distance is not None
                else float(dists.max(initial=1.0)) or 1.0
            )
        if any_dead:
            dists[dead] = np.inf
        nearest = np.argpartition(dists, k - 1)[:k] if k < total else np.arange(total)
        if params.threshold_fraction is not None:
            threshold = (
                params.threshold_fraction * max_scale * params.threshold_fn(weight)
            )
            nearest = nearest[dists[nearest] <= threshold]
        hit_owners = owners[nearest]
        candidates.update(int(o) for o in np.unique(hit_owners) if o >= 0)
    return candidates


def sketch_filter_many(
    queries: Sequence[ObjectSignature],
    query_sketches_list: Sequence[np.ndarray],
    store: SegmentStore,
    params: FilterParams,
    n_bits: int,
) -> List[Set[int]]:
    """Filtering phase for a whole batch of queries in one fused scan.

    Every query's top-``r`` segment sketches are stacked into a single
    ``(sum_of_r, n_words)`` matrix and the segment store is streamed
    through :func:`~repro.core.bitvector.hamming_many_to_many` once for
    the entire batch; the k-NN selection and thresholding also run
    batched over all rows.  Returns one candidate set per query,
    identical to calling :func:`sketch_filter` per query on the same
    store snapshot.
    """
    queries = list(queries)
    if not queries:
        return []
    owners, sketch_matrix = store.snapshot()
    if owners.shape[0] == 0:
        return [set() for _ in queries]
    tops = [q.top_segments(params.num_query_segments) for q in queries]
    stacked = np.concatenate(
        [qs[top] for qs, top in zip(query_sketches_list, tops)], axis=0
    )
    dists = hamming_many_to_many(stacked, sketch_matrix)
    total = dists.shape[1]
    dead = owners < 0
    n_alive = total - int(dead.sum())
    if n_alive == 0:
        return [set() for _ in queries]
    if dead.any():
        dists[:, dead] = _dead_sentinel(dists.dtype)
    if params.threshold_fraction is not None:
        thresholds = np.concatenate(
            [
                _segment_thresholds(
                    q, top, params, np.full(len(top), float(n_bits))
                )
                for q, top in zip(queries, tops)
            ]
        )
    else:
        thresholds = None
    k = min(params.candidates_per_segment, n_alive)
    if k < total:
        nearest = np.argpartition(dists, k - 1, axis=1)[:, :k]
    else:
        nearest = np.broadcast_to(np.arange(total), dists.shape)
    within = (
        np.take_along_axis(dists, nearest, axis=1) <= thresholds[:, None]
        if thresholds is not None
        else None
    )
    results: List[Set[int]] = []
    offset = 0
    for top in tops:
        rows = slice(offset, offset + len(top))
        offset += len(top)
        if within is not None:
            hit_owners = owners[nearest[rows][within[rows]]]
        else:
            hit_owners = owners[np.asarray(nearest[rows]).ravel()]
        hit_owners = hit_owners[hit_owners >= 0]
        results.append(set(int(o) for o in np.unique(hit_owners)))
    return results


def _direct_max_scales(
    dists: np.ndarray, max_feature_distance: Optional[float]
) -> np.ndarray:
    """Per-segment threshold scale for direct (non-sketch) filtering."""
    if max_feature_distance is not None:
        return np.full(dists.shape[0], float(max_feature_distance))
    scales = dists.max(axis=1, initial=1.0)
    scales[scales == 0.0] = 1.0
    return scales


def _segment_thresholds(
    query: ObjectSignature,
    top: Sequence[int],
    params: FilterParams,
    max_scales: np.ndarray,
) -> Optional[np.ndarray]:
    """Per-segment distance thresholds, or ``None`` when disabled."""
    if params.threshold_fraction is None:
        return None
    factors = np.asarray(
        [params.threshold_fn(float(query.weights[i])) for i in top]
    )
    return params.threshold_fraction * max_scales * factors


def _dead_sentinel(dtype: np.dtype):
    """Masking value for tombstoned rows: above every real distance."""
    if np.issubdtype(dtype, np.floating):
        return np.inf
    return np.iinfo(dtype).max


def _select_candidates(
    dists: np.ndarray,
    owners: np.ndarray,
    thresholds: Optional[np.ndarray],
    candidates_per_segment: int,
) -> Set[int]:
    """Vectorized k-NN + threshold + owner-dedup over ``(r, total)`` distances.

    ``dists`` is mutated in place (tombstoned columns are masked out);
    callers pass a freshly materialized matrix.  The dtype is whatever
    the scan produced — ``uint32`` Hamming counts or ``float64`` direct
    distances — and tombstones are masked to that dtype's maximum, which
    sorts after every real distance and fails every threshold just like
    ``inf`` does.
    """
    total = dists.shape[1]
    dead = owners < 0
    n_alive = total - int(dead.sum())
    if n_alive == 0:
        return set()
    if dead.any():
        dists[:, dead] = _dead_sentinel(dists.dtype)
    k = min(candidates_per_segment, n_alive)
    if k < total:
        nearest = np.argpartition(dists, k - 1, axis=1)[:, :k]
    else:
        nearest = np.broadcast_to(np.arange(total), dists.shape)
    if thresholds is not None:
        within = np.take_along_axis(dists, nearest, axis=1) <= thresholds[:, None]
        hit_owners = owners[nearest[within]]
    else:
        hit_owners = owners[nearest.ravel()]
    hit_owners = hit_owners[hit_owners >= 0]
    return set(int(o) for o in np.unique(hit_owners))
