"""Packed bit vectors and fast Hamming distance.

Sketches in Ferret are bit vectors compared with Hamming distance "easily
computed by XOR operations" (section 4.1.1).  We pack bits into
``uint64`` words and count differing bits with a vectorized popcount so
that streaming over an entire sketch database (the filtering step) is a
handful of numpy operations rather than a Python loop.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "pack_bits",
    "unpack_bits",
    "hamming_distance",
    "hamming_to_many",
    "popcount64",
]

_WORD_BITS = 64

# 16-bit popcount lookup table: popcount of a uint64 = sum of popcounts of
# its four 16-bit halves.  256 KiB would be needed for 16-bit keys as
# uint8 -> we use a 65536-entry uint8 table (64 KiB), built once at import.
_POPCOUNT16 = np.array(
    [bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8
)


def popcount64(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array (any shape)."""
    w = np.ascontiguousarray(words, dtype=np.uint64)
    # View each uint64 as four uint16 halves and sum table lookups.
    halves = w.view(np.uint16).reshape(w.shape + (4,))
    return _POPCOUNT16[halves].sum(axis=-1, dtype=np.uint32)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n_bits,)`` or ``(rows, n_bits)`` 0/1 array into uint64 words.

    The last word is zero-padded, so two packings of equal-length bit
    strings are always comparable word-by-word.
    """
    arr = np.asarray(bits)
    if arr.ndim == 1:
        return _pack_rows(arr[None, :])[0]
    if arr.ndim == 2:
        return _pack_rows(arr)
    raise ValueError("bits must be 1-D or 2-D")


def _pack_rows(rows: np.ndarray) -> np.ndarray:
    n_rows, n_bits = rows.shape
    n_words = (n_bits + _WORD_BITS - 1) // _WORD_BITS
    padded = np.zeros((n_rows, n_words * _WORD_BITS), dtype=np.uint8)
    padded[:, :n_bits] = rows.astype(np.uint8) & 1
    # np.packbits is big-endian within bytes; consistency is all we need.
    packed_bytes = np.packbits(padded, axis=1)
    return packed_bytes.view(np.uint64).reshape(n_rows, n_words)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a 0/1 ``uint8`` array."""
    arr = np.asarray(words, dtype=np.uint64)
    single = arr.ndim == 1
    if single:
        arr = arr[None, :]
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1)[:, :n_bits]
    return bits[0] if single else bits


def hamming_distance(
    a: Union[np.ndarray, "np.uint64"], b: Union[np.ndarray, "np.uint64"]
) -> int:
    """Hamming distance between two packed bit vectors of equal word length."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(popcount64(np.bitwise_xor(a, b)).sum())


def hamming_to_many(query: np.ndarray, database: np.ndarray) -> np.ndarray:
    """Hamming distances from one packed sketch to every row of ``database``.

    ``query`` is ``(n_words,)``; ``database`` is ``(n_rows, n_words)``.
    Returns a ``(n_rows,)`` ``uint32`` array.  This is the inner loop of
    the filtering unit: stream through all sketches with XOR + popcount.
    """
    query = np.asarray(query, dtype=np.uint64)
    database = np.atleast_2d(np.asarray(database, dtype=np.uint64))
    if database.shape[1] != query.shape[0]:
        raise ValueError(
            f"word-length mismatch: query {query.shape[0]} vs "
            f"database {database.shape[1]}"
        )
    xored = np.bitwise_xor(database, query[None, :])
    return popcount64(xored).sum(axis=1, dtype=np.uint32)
