"""Packed bit vectors and fast Hamming distance.

Sketches in Ferret are bit vectors compared with Hamming distance "easily
computed by XOR operations" (section 4.1.1).  We pack bits into
``uint64`` words and count differing bits with a vectorized popcount so
that streaming over an entire sketch database (the filtering step) is a
handful of numpy operations rather than a Python loop.
"""

from __future__ import annotations

import threading
from typing import Union

import numpy as np

__all__ = [
    "pack_bits",
    "unpack_bits",
    "hamming_distance",
    "hamming_to_many",
    "hamming_many_to_many",
    "popcount64",
]

_WORD_BITS = 64

# 16-bit popcount lookup table: popcount of a uint64 = sum of popcounts of
# its four 16-bit halves.  256 KiB would be needed for 16-bit keys as
# uint8 -> we use a 65536-entry uint8 table (64 KiB), built once at import.
_POPCOUNT16 = np.array(
    [bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8
)

# numpy >= 2.0 exposes the hardware popcount instruction as a ufunc; one
# pass over the XOR words instead of a 4-way uint16 table gather.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount64_lut(words: np.ndarray) -> np.ndarray:
    """Table-lookup popcount — the portable fallback for numpy < 2.0."""
    w = np.ascontiguousarray(words, dtype=np.uint64)
    # View each uint64 as four uint16 halves and sum table lookups.
    halves = w.view(np.uint16).reshape(w.shape + (4,))
    return _POPCOUNT16[halves].sum(axis=-1, dtype=np.uint32)


def _popcount64_native(words: np.ndarray) -> np.ndarray:
    """Native-instruction popcount via ``np.bitwise_count`` (numpy >= 2.0)."""
    w = np.asarray(words, dtype=np.uint64)
    return np.bitwise_count(w).astype(np.uint32)


def popcount64(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array (any shape)."""
    if _HAS_BITWISE_COUNT:
        return _popcount64_native(words)
    return _popcount64_lut(words)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n_bits,)`` or ``(rows, n_bits)`` 0/1 array into uint64 words.

    The last word is zero-padded, so two packings of equal-length bit
    strings are always comparable word-by-word.
    """
    arr = np.asarray(bits)
    if arr.ndim == 1:
        return _pack_rows(arr[None, :])[0]
    if arr.ndim == 2:
        return _pack_rows(arr)
    raise ValueError("bits must be 1-D or 2-D")


def _pack_rows(rows: np.ndarray) -> np.ndarray:
    n_rows, n_bits = rows.shape
    n_words = (n_bits + _WORD_BITS - 1) // _WORD_BITS
    padded = np.zeros((n_rows, n_words * _WORD_BITS), dtype=np.uint8)
    padded[:, :n_bits] = rows.astype(np.uint8) & 1
    # np.packbits is big-endian within bytes; consistency is all we need.
    packed_bytes = np.packbits(padded, axis=1)
    return packed_bytes.view(np.uint64).reshape(n_rows, n_words)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a 0/1 ``uint8`` array."""
    arr = np.asarray(words, dtype=np.uint64)
    single = arr.ndim == 1
    if single:
        arr = arr[None, :]
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1)[:, :n_bits]
    return bits[0] if single else bits


def hamming_distance(
    a: Union[np.ndarray, "np.uint64"], b: Union[np.ndarray, "np.uint64"]
) -> int:
    """Hamming distance between two packed bit vectors of equal word length."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(popcount64(np.bitwise_xor(a, b)).sum())


def hamming_to_many(query: np.ndarray, database: np.ndarray) -> np.ndarray:
    """Hamming distances from one packed sketch to every row of ``database``.

    ``query`` is ``(n_words,)``; ``database`` is ``(n_rows, n_words)``.
    Returns a ``(n_rows,)`` ``uint32`` array.  This is the inner loop of
    the filtering unit: stream through all sketches with XOR + popcount.
    """
    query = np.asarray(query, dtype=np.uint64)
    database = np.atleast_2d(np.asarray(database, dtype=np.uint64))
    if database.shape[1] != query.shape[0]:
        raise ValueError(
            f"word-length mismatch: query {query.shape[0]} vs "
            f"database {database.shape[1]}"
        )
    xored = np.bitwise_xor(database, query[None, :])
    return popcount64(xored).sum(axis=1, dtype=np.uint32)


# Cap on the blocked working set of the many-to-many kernel: summed over
# the per-word passes of one block, the XOR intermediates amount to
# (n_queries, block_rows, n_words) uint64.  16 MiB keeps the per-word
# slice cache-friendly while amortizing the per-block dispatch.
_BLOCK_BYTES = 16 << 20

# Per-thread scratch for the blocked scan: the popcount accumulator and
# the XOR intermediate are reused across blocks (and across calls) rather
# than allocated per block — at the default block size that removes two
# multi-MiB allocations per block from the scan's steady state.  Thread-
# local because concurrent scans (query_many's ranking pool, the server's
# connection threads) must not share buffers.
_scratch = threading.local()


def _scratch_views(n_queries: int, block_cols: int):
    """``(acc, xor)`` reusable views; ``acc`` comes back zeroed."""
    acc = getattr(_scratch, "acc", None)
    if (
        acc is None
        or acc.shape[0] < n_queries
        or acc.shape[1] < block_cols
    ):
        rows = max(n_queries, 0 if acc is None else acc.shape[0])
        cols = max(block_cols, 0 if acc is None else acc.shape[1])
        _scratch.acc = acc = np.empty((rows, cols), dtype=np.uint32)
        _scratch.xor = np.empty((rows, cols), dtype=np.uint64)
    acc_view = acc[:n_queries, :block_cols]
    acc_view[...] = 0
    return acc_view, _scratch.xor[:n_queries, :block_cols]


def hamming_many_to_many(
    queries: np.ndarray,
    database: np.ndarray,
    block_rows: int = None,
) -> np.ndarray:
    """Hamming distances from every query sketch to every database row.

    ``queries`` is ``(n_queries, n_words)``; ``database`` is
    ``(n_rows, n_words)``.  Returns ``(n_queries, n_rows)`` ``uint32``.
    The scan is blocked over database rows and accumulated one sketch
    word at a time: each step XORs a ``(n_queries, block_rows)`` slice
    and adds its popcount into a running total, so the largest
    intermediate is 2-D regardless of word count and stays bounded
    (about ``_BLOCK_BYTES`` across a block's word passes) no matter how
    large the sketch database is; ``block_rows`` overrides the automatic
    block size.  One fused pass replaces ``n_queries`` separate
    :func:`hamming_to_many` scans, with the XOR working set kept small
    enough to live in cache while every query visits a database block.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.uint64))
    database = np.atleast_2d(np.asarray(database, dtype=np.uint64))
    if database.shape[1] != queries.shape[1]:
        raise ValueError(
            f"word-length mismatch: queries {queries.shape[1]} vs "
            f"database {database.shape[1]}"
        )
    n_queries, n_words = queries.shape
    n_rows = database.shape[0]
    out = np.empty((n_queries, n_rows), dtype=np.uint32)
    if block_rows is None:
        block_rows = max(1, _BLOCK_BYTES // max(1, n_queries * n_words * 8))
    elif block_rows <= 0:
        raise ValueError("block_rows must be positive")
    for start in range(0, n_rows, block_rows):
        # Word-major copy of the block: each per-word pass then reads a
        # contiguous row instead of a strided column of the row-major
        # database, which is the difference between streaming and
        # gathering on wide sketches.
        block = np.ascontiguousarray(database[start : start + block_rows].T)
        acc, xored = _scratch_views(n_queries, block.shape[1])
        for word in range(n_words):
            np.bitwise_xor(queries[:, word, None], block[word][None, :], out=xored)
            if _HAS_BITWISE_COUNT:
                acc += np.bitwise_count(xored)
            else:
                acc += _popcount64_lut(xored)
        out[:, start : start + block.shape[1]] = acc
    return out
