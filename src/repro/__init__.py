"""repro — reproduction of the Ferret content-based similarity search toolkit.

Ferret (Lv, Josephson, Wang, Charikar, Li; EuroSys 2006) is a toolkit for
building content-based similarity search systems for feature-rich data.
This package reimplements the whole system in Python:

- :mod:`repro.core` — sketches, EMD, two-phase filter/rank search engine.
- :mod:`repro.storage` — transactional embedded key-value store (the
  Berkeley DB substrate: B-tree, WAL, checkpoints, crash recovery).
- :mod:`repro.metadata` — metadata management on top of the store.
- :mod:`repro.attrsearch` — attribute/keyword search.
- :mod:`repro.server` — command-line query protocol server/client.
- :mod:`repro.acquisition` — directory-scan data acquisition.
- :mod:`repro.web` — web interface.
- :mod:`repro.evaltool` — performance evaluation tool and quality metrics.
- :mod:`repro.datatypes` — plug-ins for image, audio, 3D shape and
  genomic microarray data, with synthetic benchmark generators.
"""

from .core import (
    DataTypePlugin,
    EMDDistance,
    EMDParams,
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    SearchMethod,
    SearchResult,
    SimilaritySearchEngine,
    SketchConstructor,
    SketchParams,
    emd,
)

__version__ = "1.0.0"

__all__ = [
    "DataTypePlugin",
    "EMDDistance",
    "EMDParams",
    "FeatureMeta",
    "FilterParams",
    "ObjectSignature",
    "SearchMethod",
    "SearchResult",
    "SimilaritySearchEngine",
    "SketchConstructor",
    "SketchParams",
    "emd",
    "__version__",
]
