"""Metadata management (section 4.1.3).

Keeps feature vectors, sketches, attributes and the object↔file mapping
in separate tables of the transactional store.  "All the updates to the
metadata associated with the same object are protected by database
transactions" — :meth:`MetadataManager.put_object` writes every table in
one transaction, so a crash can never leave an object half-ingested.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..core.types import ObjectSignature
from ..storage.kvstore import KVStore
from .serialization import (
    decode_attributes,
    decode_object,
    decode_sketches,
    encode_attributes,
    encode_object,
    encode_sketches,
    object_key,
    parse_object_key,
)

__all__ = ["MetadataManager"]

_T_OBJECTS = "objects"
_T_SKETCHES = "sketches"
_T_ATTRIBUTES = "attributes"
_T_FILES = "files"
_T_SYSTEM = "system"


class MetadataManager:
    """Transaction-protected metadata storage for one search system.

    Can wrap an externally managed :class:`KVStore` (``store=``) or open
    its own in ``directory``.  Implements the persistence interface the
    engine expects (``put_object`` / ``iter_objects``) plus keyed access
    used by the attribute search tool and the servers.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        store: Optional[KVStore] = None,
        **store_kwargs,
    ) -> None:
        if (directory is None) == (store is None):
            raise ValueError("pass exactly one of directory or store")
        self._owns_store = store is None
        self.store = store or KVStore(directory, **store_kwargs)

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------
    def put_object(
        self,
        object_id: int,
        signature: ObjectSignature,
        sketches: np.ndarray,
        attributes: Optional[Dict[str, str]] = None,
        filename: Optional[str] = None,
    ) -> None:
        """Write all metadata of one object atomically."""
        key = object_key(object_id)
        with self.store.begin() as txn:
            txn.put(_T_OBJECTS, key, encode_object(signature))
            txn.put(_T_SKETCHES, key, encode_sketches(sketches))
            if attributes:
                txn.put(_T_ATTRIBUTES, key, encode_attributes(attributes))
            if filename:
                txn.put(_T_FILES, filename.encode("utf-8"), key)

    def delete_object(self, object_id: int) -> None:
        key = object_key(object_id)
        with self.store.begin() as txn:
            txn.delete(_T_OBJECTS, key)
            txn.delete(_T_SKETCHES, key)
            txn.delete(_T_ATTRIBUTES, key)

    def get_object(self, object_id: int) -> Optional[ObjectSignature]:
        raw = self.store.get(_T_OBJECTS, object_key(object_id))
        if raw is None:
            return None
        return decode_object(raw, object_id)

    def get_sketches(self, object_id: int) -> Optional[np.ndarray]:
        raw = self.store.get(_T_SKETCHES, object_key(object_id))
        return None if raw is None else decode_sketches(raw)

    def get_attributes(self, object_id: int) -> Dict[str, str]:
        raw = self.store.get(_T_ATTRIBUTES, object_key(object_id))
        return {} if raw is None else decode_attributes(raw)

    def set_attributes(self, object_id: int, attributes: Dict[str, str]) -> None:
        self.store.put(
            _T_ATTRIBUTES, object_key(object_id), encode_attributes(attributes)
        )

    # ------------------------------------------------------------------
    # File mapping
    # ------------------------------------------------------------------
    def file_for(self, filename: str) -> Optional[int]:
        raw = self.store.get(_T_FILES, filename.encode("utf-8"))
        return None if raw is None else parse_object_key(raw)

    def files(self) -> Iterator[Tuple[str, int]]:
        for path_b, key in self.store.items(_T_FILES):
            yield path_b.decode("utf-8"), parse_object_key(key)

    # ------------------------------------------------------------------
    # Iteration / counters
    # ------------------------------------------------------------------
    def iter_objects(
        self,
    ) -> Iterator[Tuple[int, ObjectSignature, np.ndarray, Dict[str, str]]]:
        """Yield ``(object_id, signature, sketches, attributes)`` for all
        objects, in object-id order.  This is the engine's reload path."""
        for key, raw in self.store.items(_T_OBJECTS):
            object_id = parse_object_key(key)
            sk_raw = self.store.get(_T_SKETCHES, key)
            at_raw = self.store.get(_T_ATTRIBUTES, key)
            yield (
                object_id,
                decode_object(raw, object_id),
                decode_sketches(sk_raw) if sk_raw is not None else np.empty((0, 0), np.uint64),
                decode_attributes(at_raw) if at_raw is not None else {},
            )

    def iter_attributes(self) -> Iterator[Tuple[int, Dict[str, str]]]:
        for key, raw in self.store.items(_T_ATTRIBUTES):
            yield parse_object_key(key), decode_attributes(raw)

    def num_objects(self) -> int:
        return self.store.count(_T_OBJECTS)

    def next_object_id(self) -> int:
        """Allocate a monotonically increasing object id (durable counter)."""
        raw = self.store.get(_T_SYSTEM, b"next_object_id")
        next_id = int.from_bytes(raw, "little") if raw else 0
        self.store.put(
            _T_SYSTEM, b"next_object_id", (next_id + 1).to_bytes(8, "little")
        )
        return next_id

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        self.store.checkpoint()

    def close(self) -> None:
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "MetadataManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
