"""Out-of-core similarity search — the paper's stated future work.

"We expect to investigate more efficient out-of-core indexing data
structures for similarity search to further improve support for very
large data sets" (section 8).  This module provides that path: segment
sketches live in a table of the transactional store and the filtering
scan streams them in bounded-size blocks, so neither the sketch database
nor the feature vectors need to fit in memory.  Candidate objects are
loaded from the metadata manager only for the final ranking step.

Layout: table ``segment_sketches``, key ``object_key || segment index``
(big-endian, so one object's segments are contiguous and the scan order
is deterministic), value = packed sketch words.  The key embeds the
owner, so the scan needs no side lookup.
"""

from __future__ import annotations

import heapq
import struct
from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.bitvector import hamming_many_to_many
from ..core.filtering import FilterParams
from ..core.ranking import SearchResult, rank_candidates
from ..core.types import ObjectSignature
from ..storage.kvstore import KVStore
from .manager import MetadataManager

__all__ = ["OutOfCoreSketchStore", "OutOfCoreSearcher"]

_TABLE = "segment_sketches"


class OutOfCoreSketchStore:
    """Disk-resident segment sketch database with blocked scans."""

    def __init__(self, store: KVStore, n_words: int, block_size: int = 4096) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.store = store
        self.n_words = n_words
        self.block_size = block_size

    @staticmethod
    def _key(object_id: int, segment: int) -> bytes:
        return struct.pack(">QI", object_id, segment)

    def add_object(self, object_id: int, sketches: np.ndarray) -> None:
        sketches = np.atleast_2d(np.asarray(sketches, dtype="<u8"))
        if sketches.shape[1] != self.n_words:
            raise ValueError(
                f"expected {self.n_words}-word sketches, got {sketches.shape[1]}"
            )
        with self.store.begin() as txn:
            for segment, row in enumerate(sketches):
                txn.put(_TABLE, self._key(object_id, segment), row.tobytes())

    def num_segments(self) -> int:
        return self.store.count(_TABLE)

    def iter_blocks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(owner_ids, sketch_matrix)`` blocks of bounded size.

        Each block holds at most ``block_size`` segments; memory use is
        O(block_size x n_words) regardless of database size.
        """
        # Paged range scans: 'start' is inclusive, so resume from the
        # previous block's last key plus a zero byte (its successor in
        # bytewise order).
        after: Optional[bytes] = None
        while True:
            batch = self.store.items(_TABLE, start=after, limit=self.block_size)
            if not batch:
                break
            owners = []
            rows = []
            for key, value in batch:
                object_id, _segment = struct.unpack(">QI", key)
                owners.append(object_id)
                rows.append(value)
            matrix = np.frombuffer(b"".join(rows), dtype="<u8").reshape(
                len(rows), self.n_words
            )
            yield np.asarray(owners, dtype=np.int64), matrix.astype(np.uint64)
            after = batch[-1][0] + b"\x00"
            if len(batch) < self.block_size:
                break

    def scan_nearest(
        self,
        query_sketch: np.ndarray,
        k: int,
        threshold: Optional[float] = None,
    ) -> List[Tuple[int, int]]:
        """k nearest segments to one query sketch: ``[(owner, distance)]``.

        Streams the whole table block by block, keeping a bounded heap.
        """
        thresholds = None if threshold is None else [threshold]
        return self.scan_nearest_many(
            np.atleast_2d(np.asarray(query_sketch, dtype=np.uint64)),
            k, thresholds,
        )[0]

    def scan_nearest_many(
        self,
        query_sketches: np.ndarray,
        k: int,
        thresholds: Optional[Sequence[float]] = None,
    ) -> List[List[Tuple[int, int]]]:
        """k nearest segments for *every* query sketch in one table pass.

        The disk-resident table is streamed block by block exactly once
        for the whole batch; per block, distances to all queries come
        from a single :func:`~repro.core.bitvector.hamming_many_to_many`
        call, and each query keeps its own bounded heap.  Memory stays
        O(block_size x n_queries) regardless of database size.
        ``thresholds`` optionally gives one distance cutoff per query.
        """
        queries = np.atleast_2d(np.asarray(query_sketches, dtype=np.uint64))
        n_queries = queries.shape[0]
        if thresholds is not None and len(thresholds) != n_queries:
            raise ValueError("need one threshold per query sketch")
        heaps: List[List[Tuple[int, int]]] = [[] for _ in range(n_queries)]
        for owners, matrix in self.iter_blocks():
            dist_matrix = hamming_many_to_many(queries, matrix)
            for qi in range(n_queries):
                dists = dist_matrix[qi]
                heap = heaps[qi]
                # Pre-select the block's k best rows so the Python heap
                # merge touches at most k entries per block.  The stable
                # sort orders ties by scan position, so the heap keeps
                # the same earliest-wins tie-breaking as a row-by-row
                # scan of the whole table.
                best = np.argsort(dists, kind="stable")[:k]
                threshold = thresholds[qi] if thresholds is not None else None
                for row in best:
                    d = int(dists[row])
                    if threshold is not None and d > threshold:
                        continue
                    if len(heap) < k:
                        heapq.heappush(heap, (-d, int(owners[row])))
                    elif -heap[0][0] > d:
                        heapq.heapreplace(heap, (-d, int(owners[row])))
        return [
            sorted((owner, -neg) for neg, owner in heap) for heap in heaps
        ]


class OutOfCoreSearcher:
    """Two-phase search with disk-resident sketches and feature vectors.

    Mirrors the engine's FILTERING policy, but the only whole-dataset
    state it touches is the blocked sketch scan; candidate signatures
    are fetched individually from the metadata manager for ranking.
    """

    def __init__(
        self,
        metadata: MetadataManager,
        sketch_store: OutOfCoreSketchStore,
        sketcher: "object",
        obj_distance,
        filter_params: Optional[FilterParams] = None,
    ) -> None:
        self.metadata = metadata
        self.sketch_store = sketch_store
        self.sketcher = sketcher
        self.obj_distance = obj_distance
        self.filter_params = filter_params or FilterParams()

    def insert(self, object_id: int, signature: ObjectSignature,
               attributes: Optional[dict] = None) -> None:
        sketches = self.sketcher.sketch_many(signature.features)
        self.metadata.put_object(object_id, signature, sketches, attributes or {})
        self.sketch_store.add_object(object_id, sketches)

    def candidates(self, query: ObjectSignature) -> Set[int]:
        params = self.filter_params
        query_sketches = self.sketcher.sketch_many(query.features)
        threshold_base = (
            params.threshold_fraction * self.sketcher.n_bits
            if params.threshold_fraction is not None
            else None
        )
        top = query.top_segments(params.num_query_segments)
        thresholds = (
            [
                threshold_base * params.threshold_fn(float(query.weights[i]))
                for i in top
            ]
            if threshold_base is not None
            else None
        )
        # All top query segments share one blocked pass over the table
        # instead of re-streaming it per segment.
        per_segment = self.sketch_store.scan_nearest_many(
            query_sketches[top], params.candidates_per_segment, thresholds
        )
        out: Set[int] = set()
        for nearest in per_segment:
            out.update(owner for owner, _dist in nearest)
        return out

    def query(
        self, query: ObjectSignature, top_k: int = 10, exclude_self: bool = False
    ) -> List[SearchResult]:
        candidate_ids = self.candidates(query)

        class _LazyObjects:
            """Mapping view that loads signatures on demand."""

            def __init__(self, metadata: MetadataManager) -> None:
                self._metadata = metadata

            def __getitem__(self, object_id: int) -> ObjectSignature:
                signature = self._metadata.get_object(object_id)
                if signature is None:
                    raise KeyError(object_id)
                return signature

        return rank_candidates(
            query, candidate_ids, _LazyObjects(self.metadata),
            self.obj_distance, top_k=top_k, exclude_self=exclude_self,
        )
