"""Out-of-core similarity search — the paper's stated future work.

"We expect to investigate more efficient out-of-core indexing data
structures for similarity search to further improve support for very
large data sets" (section 8).  This module provides that path: segment
sketches live in a table of the transactional store and the filtering
scan streams them in bounded-size blocks, so neither the sketch database
nor the feature vectors need to fit in memory.  Candidate objects are
loaded from the metadata manager only for the final ranking step.

Layout: table ``segment_sketches``, key ``object_key || segment index``
(big-endian, so one object's segments are contiguous and the scan order
is deterministic), value = packed sketch words.  The key embeds the
owner, so the scan needs no side lookup.

A filter pool — either backend,
:class:`~repro.core.parallel.ParallelFilterPool` (worker processes over
a shared-memory arena) or
:class:`~repro.core.parallel.ThreadFilterPool` (worker threads over an
in-process copy) — can be attached to the sketch store: the table is
streamed once into the pool's arena (in scan order, so global row
number == scan position) and subsequent scans fan out across the
pool's workers as one fused batch message per worker.  Per-query
thresholds are pushed into the workers — masked before selection — so
the parallel scan keeps this module's threshold-then-top-k semantics,
and the deterministic tie rule (smallest scan position wins at the kth
distance) makes its results identical to the serial blocked scan.
Attaching trades the out-of-core memory bound for scan speed: the arena
snapshot is memory-resident.
"""

from __future__ import annotations

import heapq
import struct
import time
from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.bitvector import hamming_many_to_many
from ..core.filtering import FilterParams
from ..core.parallel import _SENTINEL, FilterPool, ParallelScanError
from ..core.ranking import SearchResult, rank_candidates
from ..core.types import ObjectSignature
from ..observability import metrics as _metrics
from ..storage.kvstore import KVStore
from .manager import MetadataManager

__all__ = ["OutOfCoreSketchStore", "OutOfCoreSearcher"]

_TABLE = "segment_sketches"

_M_SCANS = _metrics.counter("outofcore.scans")
_M_SCAN_SECONDS = _metrics.histogram("outofcore.scan_seconds")
_M_POOL_SCANS = _metrics.counter("outofcore.pool_scans")
_M_BLOCKS = _metrics.counter("outofcore.blocks_read")
_M_ROWS = _metrics.counter("outofcore.rows_scanned")
_M_DELTA_SYNCS = _metrics.counter("outofcore.delta_syncs")
_M_ERR_POOL_FALLBACK = _metrics.counter("errors_absorbed.outofcore.pool_scan")

# Rows of recent inserts retained in memory for delta pool syncs.  Past
# this the oldest entries are dropped and a pool that lags further back
# than the log reaches falls back to a full re-stream.
_MAX_APPEND_LOG_ROWS = 65536


class OutOfCoreSketchStore:
    """Disk-resident segment sketch database with blocked scans."""

    def __init__(self, store: KVStore, n_words: int, block_size: int = 4096) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.store = store
        self.n_words = n_words
        self.block_size = block_size
        # Mutation epoch: bumped on every insert so an attached pool's
        # arena (tagged with the epoch it was loaded from) can be
        # detected as stale and reloaded before the next scan.
        self._epoch = 0
        self._pool: Optional[FilterPool] = None
        # Append log for delta pool syncs: (epoch-after-insert, owners,
        # sketches) per insert, covering exactly (_log_floor, _epoch].
        # Delta rows land at the arena tail, which matches a fresh
        # re-stream only while keys arrive in ascending order; _last_key
        # tracks the table's known maximum key so out-of-order (or
        # overwriting) inserts invalidate the log instead of corrupting
        # the pool's scan-position tie rule.  None means "unknown" — a
        # store opened over pre-existing data stays conservative until a
        # full stream has observed the table's final key.
        self._append_log: List[Tuple[int, np.ndarray, np.ndarray]] = []
        self._log_rows = 0
        self._log_floor = 0
        self._last_key: Optional[bytes] = (
            b"" if store.count(_TABLE) == 0 else None
        )

    @property
    def epoch(self) -> int:
        return self._epoch

    @staticmethod
    def _key(object_id: int, segment: int) -> bytes:
        return struct.pack(">QI", object_id, segment)

    def add_object(self, object_id: int, sketches: np.ndarray) -> None:
        sketches = np.atleast_2d(np.asarray(sketches, dtype="<u8"))
        if sketches.shape[1] != self.n_words:
            raise ValueError(
                f"expected {self.n_words}-word sketches, got {sketches.shape[1]}"
            )
        first_key = self._key(object_id, 0)
        last_key = self._key(object_id, sketches.shape[0] - 1)
        in_order = self._last_key is not None and first_key > self._last_key
        overwrite = in_order and self.store.get(_TABLE, first_key) is not None
        with self.store.begin() as txn:
            for segment, row in enumerate(sketches):
                txn.put(_TABLE, self._key(object_id, segment), row.tobytes())
        self._epoch += 1
        if in_order and not overwrite:
            self._append_log.append(
                (
                    self._epoch,
                    np.full(sketches.shape[0], object_id, dtype=np.int64),
                    sketches.copy(),
                )
            )
            self._log_rows += sketches.shape[0]
            self._trim_append_log()
        else:
            self._invalidate_append_log()
        # Never seed _last_key from a blind insert: the table may hold
        # larger pre-existing keys, and guessing low would mislabel later
        # inserts as in-order.  A completed full stream seeds it instead.
        if self._last_key is not None and last_key > self._last_key:
            self._last_key = last_key

    def num_segments(self) -> int:
        return self.store.count(_TABLE)

    def iter_blocks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(owner_ids, sketch_matrix)`` blocks of bounded size.

        Each block holds at most ``block_size`` segments; memory use is
        O(block_size x n_words) regardless of database size.
        """
        # Paged range scans: 'start' is inclusive, so resume from the
        # previous block's last key plus a zero byte (its successor in
        # bytewise order).
        after: Optional[bytes] = None
        scanned_to: Optional[bytes] = None
        while True:
            batch = self.store.items(_TABLE, start=after, limit=self.block_size)
            if not batch:
                break
            owners = []
            rows = []
            for key, value in batch:
                object_id, _segment = struct.unpack(">QI", key)
                owners.append(object_id)
                rows.append(value)
            matrix = np.frombuffer(b"".join(rows), dtype="<u8").reshape(
                len(rows), self.n_words
            )
            _M_BLOCKS.inc()
            _M_ROWS.inc(len(rows))
            yield np.asarray(owners, dtype=np.int64), matrix.astype(np.uint64)
            scanned_to = batch[-1][0]
            after = scanned_to + b"\x00"
            if len(batch) < self.block_size:
                break
        # A fully-consumed pass has observed the table's maximum key, so
        # a store opened over pre-existing data can start serving delta
        # syncs for subsequent in-order inserts.
        if self._last_key is None and scanned_to is not None:
            self._last_key = scanned_to

    # -- parallel scan attachment ---------------------------------------
    def attach_pool(self, pool: FilterPool) -> None:
        """Serve scans from ``pool``'s worker shards instead of in-process.

        The table is streamed into the pool's shared-memory arena on the
        next scan (and re-streamed whenever the store's epoch moves past
        the arena's).  The store does not own the pool: detaching or a
        scan failure never closes it.
        """
        self._pool = pool
        self._sync_pool()

    def detach_pool(self) -> Optional[FilterPool]:
        """Stop using the attached pool and return it (not closed)."""
        pool, self._pool = self._pool, None
        return pool

    def _invalidate_append_log(self) -> None:
        """Forget logged inserts; pools must full-stream to catch up."""
        self._append_log.clear()
        self._log_rows = 0
        self._log_floor = self._epoch

    def _trim_append_log(self) -> None:
        """Bound log memory; dropped epochs force a full re-stream."""
        while self._log_rows > _MAX_APPEND_LOG_ROWS and self._append_log:
            epoch, owners, _sketches = self._append_log.pop(0)
            self._log_rows -= owners.shape[0]
            self._log_floor = epoch

    def _delta_since(
        self, loaded: object
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Rows appended after ``loaded``, or None when unservable.

        The log covers exactly ``(_log_floor, _epoch]``; anything older
        (or an epoch tag this store didn't issue) needs a full stream.
        """
        if not isinstance(loaded, int) or isinstance(loaded, bool):
            return None
        if loaded < self._log_floor or loaded >= self._epoch:
            return None
        owners = [o for e, o, _s in self._append_log if e > loaded]
        sketches = [s for e, _o, s in self._append_log if e > loaded]
        if not owners:
            return None
        return (
            np.concatenate(owners),
            np.ascontiguousarray(np.concatenate(sketches, axis=0)),
        )

    def _sync_pool(self) -> bool:
        """Load/refresh the pool arena; True when it can serve scans."""
        pool = self._pool
        if pool is None:
            return False
        epoch = self._epoch
        if pool.matches(epoch):
            return True
        loaded = pool.loaded_epoch
        if loaded is not None:
            delta = self._delta_since(loaded)
            if delta is not None and pool.load_delta(
                delta[0], delta[1], loaded, epoch
            ):
                # The store is append-only, so the delta carries no
                # tombstones; the pool refused (False) only when its
                # arena lacks capacity or the epochs raced, both of
                # which the full stream below resolves.
                _M_DELTA_SYNCS.inc()
                return True
        owner_parts: List[np.ndarray] = []
        sketch_parts: List[np.ndarray] = []
        for owners, matrix in self.iter_blocks():
            owner_parts.append(owners)
            sketch_parts.append(matrix)
        if not owner_parts:
            return False  # empty table: the serial path is already O(1)
        pool.load(
            np.concatenate(owner_parts),
            np.ascontiguousarray(np.concatenate(sketch_parts, axis=0)),
            epoch=epoch,
        )
        return True

    def _scan_nearest_pool(
        self,
        queries: np.ndarray,
        k: int,
        thresholds: Optional[Sequence[float]],
        trace=None,
    ) -> List[List[Tuple[int, int]]]:
        assert self._pool is not None
        th = None
        if thresholds is not None:
            # Per-query None means "no cutoff"; +inf masks nothing.
            th = np.array(
                [np.inf if t is None else float(t) for t in thresholds],
                dtype=np.float64,
            )
        # origin="outofcore" makes the workers book this request under
        # their own outofcore.* series (surfaced parent-side as
        # workers.outofcore.scans after aggregation).
        dists, rows = self._pool.scan_topk(
            queries, k, thresholds=th, origin="outofcore", trace=trace
        )
        out: List[List[Tuple[int, int]]] = []
        for qi in range(queries.shape[0]):
            keep = dists[qi] < _SENTINEL
            owners = self._pool.owners_of(rows[qi][keep])
            out.append(
                sorted(
                    (int(owner), int(d))
                    for owner, d in zip(owners, dists[qi][keep])
                )
            )
        return out

    def scan_nearest(
        self,
        query_sketch: np.ndarray,
        k: int,
        threshold: Optional[float] = None,
    ) -> List[Tuple[int, int]]:
        """k nearest segments to one query sketch: ``[(owner, distance)]``.

        Streams the whole table block by block, keeping a bounded heap.
        """
        thresholds = None if threshold is None else [threshold]
        return self.scan_nearest_many(
            np.atleast_2d(np.asarray(query_sketch, dtype=np.uint64)),
            k, thresholds,
        )[0]

    def scan_nearest_many(
        self,
        query_sketches: np.ndarray,
        k: int,
        thresholds: Optional[Sequence[float]] = None,
        trace=None,
    ) -> List[List[Tuple[int, int]]]:
        """k nearest segments for *every* query sketch in one table pass.

        The disk-resident table is streamed block by block exactly once
        for the whole batch; per block, distances to all queries come
        from a single :func:`~repro.core.bitvector.hamming_many_to_many`
        call, and each query keeps its own bounded heap.  Memory stays
        O(block_size x n_queries) regardless of database size.
        ``thresholds`` optionally gives one distance cutoff per query.
        """
        queries = np.atleast_2d(np.asarray(query_sketches, dtype=np.uint64))
        n_queries = queries.shape[0]
        if thresholds is not None and len(thresholds) != n_queries:
            raise ValueError("need one threshold per query sketch")
        started = time.perf_counter()
        _M_SCANS.inc()
        if self._pool is not None and k > 0:
            try:
                if self._sync_pool():
                    result = self._scan_nearest_pool(
                        queries, k, thresholds, trace=trace
                    )
                    _M_POOL_SCANS.inc()
                    _M_SCAN_SECONDS.observe(time.perf_counter() - started)
                    return result
            except ParallelScanError:
                # A dead/closed pool must not fail the scan; drop it and
                # stream in-process.  Re-attach to resume parallel scans.
                _M_ERR_POOL_FALLBACK.inc()
                self._pool = None
        heaps: List[List[Tuple[int, int, int]]] = [[] for _ in range(n_queries)]
        base = 0
        for owners, matrix in self.iter_blocks():
            dist_matrix = hamming_many_to_many(queries, matrix)
            for qi in range(n_queries):
                dists = dist_matrix[qi]
                heap = heaps[qi]
                # Pre-select the block's k best rows so the Python heap
                # merge touches at most k entries per block.  The stable
                # sort orders ties by scan position; heap entries carry
                # the negated global scan position so eviction removes
                # the latest-scanned row among equal distances.  That is
                # exactly the deterministic smallest-position-wins rule
                # of :func:`~repro.core.filtering.select_k_smallest`, so
                # serial and pool scans pick identical rows under ties.
                best = np.argsort(dists, kind="stable")[:k]
                threshold = thresholds[qi] if thresholds is not None else None
                for row in best:
                    d = int(dists[row])
                    if threshold is not None and d > threshold:
                        continue
                    if len(heap) < k:
                        heapq.heappush(heap, (-d, -(base + int(row)), int(owners[row])))
                    elif -heap[0][0] > d:
                        heapq.heapreplace(heap, (-d, -(base + int(row)), int(owners[row])))
            base += matrix.shape[0]
        _M_SCAN_SECONDS.observe(time.perf_counter() - started)
        return [
            sorted((owner, -neg) for neg, _pos, owner in heap) for heap in heaps
        ]


class OutOfCoreSearcher:
    """Two-phase search with disk-resident sketches and feature vectors.

    Mirrors the engine's FILTERING policy, but the only whole-dataset
    state it touches is the blocked sketch scan; candidate signatures
    are fetched individually from the metadata manager for ranking.
    """

    def __init__(
        self,
        metadata: MetadataManager,
        sketch_store: OutOfCoreSketchStore,
        sketcher: "object",
        obj_distance,
        filter_params: Optional[FilterParams] = None,
    ) -> None:
        self.metadata = metadata
        self.sketch_store = sketch_store
        self.sketcher = sketcher
        self.obj_distance = obj_distance
        self.filter_params = filter_params or FilterParams()

    def insert(self, object_id: int, signature: ObjectSignature,
               attributes: Optional[dict] = None) -> None:
        sketches = self.sketcher.sketch_many(signature.features)
        self.metadata.put_object(object_id, signature, sketches, attributes or {})
        self.sketch_store.add_object(object_id, sketches)

    def candidates(self, query: ObjectSignature) -> Set[int]:
        params = self.filter_params
        query_sketches = self.sketcher.sketch_many(query.features)
        threshold_base = (
            params.threshold_fraction * self.sketcher.n_bits
            if params.threshold_fraction is not None
            else None
        )
        top = query.top_segments(params.num_query_segments)
        thresholds = (
            [
                threshold_base * params.threshold_factor(float(query.weights[i]))
                for i in top
            ]
            if threshold_base is not None
            else None
        )
        # All top query segments share one blocked pass over the table
        # instead of re-streaming it per segment.
        per_segment = self.sketch_store.scan_nearest_many(
            query_sketches[top], params.candidates_per_segment, thresholds
        )
        out: Set[int] = set()
        for nearest in per_segment:
            out.update(owner for owner, _dist in nearest)
        return out

    def query(
        self, query: ObjectSignature, top_k: int = 10, exclude_self: bool = False
    ) -> List[SearchResult]:
        candidate_ids = self.candidates(query)

        class _LazyObjects:
            """Mapping view that loads signatures on demand."""

            def __init__(self, metadata: MetadataManager) -> None:
                self._metadata = metadata

            def __getitem__(self, object_id: int) -> ObjectSignature:
                signature = self._metadata.get_object(object_id)
                if signature is None:
                    raise KeyError(object_id)
                return signature

        return rank_candidates(
            query, candidate_ids, _LazyObjects(self.metadata),
            self.obj_distance, top_k=top_k, exclude_self=exclude_self,
        )
