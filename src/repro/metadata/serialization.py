"""Binary codecs for metadata values.

Feature vectors are stored as float32 (the paper sizes feature vectors at
32 bits per dimension), weights as float64, sketches as their packed
uint64 words.  All encodings are little-endian, length-prefixed, and
versioned with a leading format byte so the layout can evolve.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

import numpy as np

from ..core.types import ObjectSignature

__all__ = [
    "encode_object",
    "decode_object",
    "encode_sketches",
    "decode_sketches",
    "encode_attributes",
    "decode_attributes",
    "object_key",
    "parse_object_key",
]

_OBJECT_V1 = 1
_SKETCH_V1 = 1
_ATTRS_V1 = 1


def object_key(object_id: int) -> bytes:
    """Big-endian fixed-width key so B-tree order equals numeric order."""
    return struct.pack(">Q", object_id)


def parse_object_key(key: bytes) -> int:
    return struct.unpack(">Q", key)[0]


def encode_object(signature: ObjectSignature) -> bytes:
    k, dim = signature.features.shape
    header = struct.pack("<BII", _OBJECT_V1, k, dim)
    feats = signature.features.astype("<f4").tobytes()
    weights = signature.weights.astype("<f8").tobytes()
    return header + weights + feats


def decode_object(raw: bytes, object_id: int = None) -> ObjectSignature:
    version, k, dim = struct.unpack_from("<BII", raw)
    if version != _OBJECT_V1:
        raise ValueError(f"unsupported object encoding version {version}")
    offset = 9
    weights = np.frombuffer(raw, dtype="<f8", count=k, offset=offset)
    offset += 8 * k
    feats = np.frombuffer(raw, dtype="<f4", count=k * dim, offset=offset)
    return ObjectSignature(
        feats.astype(np.float64).reshape(k, dim),
        weights.copy(),
        object_id=object_id,
        normalize=False,
    )


def encode_sketches(sketches: np.ndarray) -> bytes:
    arr = np.atleast_2d(np.asarray(sketches, dtype="<u8"))
    header = struct.pack("<BII", _SKETCH_V1, arr.shape[0], arr.shape[1])
    return header + arr.tobytes()


def decode_sketches(raw: bytes) -> np.ndarray:
    version, rows, words = struct.unpack_from("<BII", raw)
    if version != _SKETCH_V1:
        raise ValueError(f"unsupported sketch encoding version {version}")
    flat = np.frombuffer(raw, dtype="<u8", count=rows * words, offset=9)
    return flat.astype(np.uint64).reshape(rows, words)


def encode_attributes(attributes: Dict[str, str]) -> bytes:
    parts = [struct.pack("<BI", _ATTRS_V1, len(attributes))]
    for key in sorted(attributes):
        kb = key.encode("utf-8")
        vb = attributes[key].encode("utf-8")
        parts.append(struct.pack("<HI", len(kb), len(vb)))
        parts.append(kb)
        parts.append(vb)
    return b"".join(parts)


def decode_attributes(raw: bytes) -> Dict[str, str]:
    version, count = struct.unpack_from("<BI", raw)
    if version != _ATTRS_V1:
        raise ValueError(f"unsupported attribute encoding version {version}")
    offset = 5
    out: Dict[str, str] = {}
    for _ in range(count):
        klen, vlen = struct.unpack_from("<HI", raw, offset)
        offset += 6
        key = raw[offset : offset + klen].decode("utf-8")
        offset += klen
        out[key] = raw[offset : offset + vlen].decode("utf-8")
        offset += vlen
    return out
