"""Metadata management: transactional storage of feature vectors,
sketches, attributes and the object-to-file mapping (section 4.1.3)."""

from .manager import MetadataManager
from .outofcore import OutOfCoreSearcher, OutOfCoreSketchStore
from .serialization import (
    decode_attributes,
    decode_object,
    decode_sketches,
    encode_attributes,
    encode_object,
    encode_sketches,
    object_key,
    parse_object_key,
)

__all__ = [
    "MetadataManager",
    "OutOfCoreSearcher",
    "OutOfCoreSketchStore",
    "decode_attributes",
    "decode_object",
    "decode_sketches",
    "encode_attributes",
    "encode_object",
    "encode_sketches",
    "object_key",
    "parse_object_key",
]
