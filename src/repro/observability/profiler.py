"""Dependency-free sampling profiler for the long-running server.

When a production query is slow, the slow-query log says *that* it was
slow and the trace says *which stage* was slow — this module answers the
remaining question, *what code* the process was running.  It is a
wall-clock stack sampler built purely on the stdlib:

- A daemon thread wakes every ``interval`` seconds and snapshots every
  thread's Python stack via ``sys._current_frames()``.  The classical
  ``signal.setitimer``/``SIGPROF`` approach can only interrupt (and
  therefore only observe) the main thread and may only be armed *from*
  the main thread — useless for a ``ThreadingTCPServer`` whose queries
  run on handler threads — so the thread sampler is the portable choice.
  The trade-off: samples land at bytecode boundaries and time spent
  inside a single C call (a long numpy kernel) attributes to the Python
  frame that issued it, which is exactly the attribution a search-engine
  operator wants anyway.
- Samples aggregate in place as collapsed stacks (``frame;frame;frame``
  root-first, FlameGraph's folded format) with counts, so memory is
  bounded by the number of *unique* stacks, not the sampling duration.
- :meth:`SamplingProfiler.capture_slow` takes one immediate snapshot of
  all threads; the engine's trace recorder calls it whenever a query
  crosses the slow-query threshold, so slow queries leave stacks behind
  even when continuous sampling is off.

Server surface: ``setparam profile on|off`` starts/stops the sampler
and ``profile [n]`` returns the top-``n`` collapsed stacks (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Tuple

from . import metrics as _metrics

__all__ = ["SamplingProfiler", "collapse_frame"]

_M_SAMPLES = _metrics.counter("profiler.samples")
_M_SLOW_CAPTURES = _metrics.counter("profiler.slow_captures")


def _format_frame(frame) -> str:
    code = frame.f_code
    filename = code.co_filename.rsplit("/", 1)[-1]
    # Folded-stack consumers split frames on ";" and the trailing count
    # on the last space, so neither may appear inside a frame name
    # (synthetic filenames like "<frozen runpy>" contain spaces).
    return f"{filename}:{code.co_name}".replace(" ", "_").replace(";", "_")


def collapse_frame(frame, max_depth: int = 64) -> Tuple[str, ...]:
    """One thread's stack as a root-first tuple of ``file.py:func``."""
    stack: List[str] = []
    while frame is not None and len(stack) < max_depth:
        stack.append(_format_frame(frame))
        frame = frame.f_back
    stack.reverse()
    return tuple(stack)


class SamplingProfiler:
    """Aggregating wall-clock stack sampler over all threads.

    Thread-safe; ``start``/``stop`` are idempotent.  The sampler thread
    excludes its own stack from samples.  ``max_unique_stacks`` bounds
    memory — once reached, samples landing on *new* stacks are counted
    as ``dropped`` instead of stored (existing stacks keep counting).
    """

    def __init__(
        self, interval: float = 0.005, max_unique_stacks: int = 4096
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        if max_unique_stacks <= 0:
            raise ValueError("max_unique_stacks must be positive")
        self.interval = float(interval)
        self.max_unique_stacks = int(max_unique_stacks)
        self._lock = threading.Lock()
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._samples = 0
        self._slow_captures = 0
        self._dropped = 0
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> bool:
        """Begin continuous sampling; False if already running."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return False
            self._stop_event = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="ferret-profiler", daemon=True
            )
            self._thread.start()
            return True

    def stop(self) -> bool:
        """Stop continuous sampling; False if it was not running."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None or not thread.is_alive():
            return False
        self._stop_event.set()
        thread.join(timeout=2.0)
        return True

    # -- sampling --------------------------------------------------------
    def _run(self) -> None:
        stop = self._stop_event
        while not stop.wait(self.interval):
            self.sample_once()

    def sample_once(self) -> int:
        """Snapshot every thread's stack now; returns stacks recorded.

        The sampler thread's own loop is excluded (whether this call
        came from it or from outside); every other thread — including
        the caller, which is the point of the slow-query capture — is
        recorded.
        """
        thread = self._thread
        sampler_ident = thread.ident if thread is not None else None
        frames = sys._current_frames()
        recorded = 0
        with self._lock:
            for ident, frame in frames.items():
                if sampler_ident is not None and ident == sampler_ident:
                    continue
                stack = collapse_frame(frame)
                if not stack:
                    continue
                if (
                    stack not in self._counts
                    and len(self._counts) >= self.max_unique_stacks
                ):
                    self._dropped += 1
                    continue
                self._counts[stack] = self._counts.get(stack, 0) + 1
                recorded += 1
            self._samples += 1
        _M_SAMPLES.inc()
        return recorded

    def capture_slow(self) -> int:
        """One immediate all-thread sample attributed to a slow query."""
        recorded = self.sample_once()
        with self._lock:
            self._slow_captures += 1
        _M_SLOW_CAPTURES.inc()
        return recorded

    # -- results ---------------------------------------------------------
    def collapsed(self, limit: Optional[int] = None) -> List[str]:
        """Folded-stack lines ``frame;frame;frame count``, most-sampled
        first (ties broken by stack text for stable output)."""
        with self._lock:
            items = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            items = items[: max(0, limit)]
        return [f"{';'.join(stack)} {count}" for stack, count in items]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "running": self.running,
                "interval_seconds": self.interval,
                "samples": self._samples,
                "unique_stacks": len(self._counts),
                "slow_captures": self._slow_captures,
                "dropped": self._dropped,
            }

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0
            self._slow_captures = 0
            self._dropped = 0
