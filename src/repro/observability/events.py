"""The event journal: a bounded, sequenced record of cluster lifecycle.

Metrics answer "how much"; traces answer "where did one query go"; the
event journal answers the postmortem question — *what happened, in what
order*.  Every state change worth reconstructing after an incident is
recorded as one :class:`Event`:

- circuit-breaker transitions (``breaker_transition``),
- replica failovers and hedged-read wins (``failover``, ``hedged_win``),
- backend re-admissions (``backend_readmitted``),
- topology changes (epoch bumps attached to breaker events),
- under-replicated writes (``under_replicated_write``),
- supervisor drills (``node_kill`` / ``node_hang`` / ``node_resume`` /
  ``node_restart`` / ``node_start``).

Events carry a **monotonically increasing sequence number** assigned
under one lock, so concurrent recorders (scatter threads, the prober,
breaker callbacks) produce a single total order — "the breaker opened
*before* the failover" is a fact the journal can prove, which wall-clock
timestamps alone cannot.  The journal is bounded (oldest entries fall
off) and queryable over the wire via the ``events [n]`` command.

Every record is mirrored to the structured logger, so the journal and
the stderr log tell one story; ``events.recorded`` counts total records
(including rotated-out ones).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from . import metrics as _metrics
from .log import get_logger

__all__ = ["Event", "EventLog", "get_event_log", "set_event_log"]

_LOG = get_logger("events")
_M_RECORDED = _metrics.counter("events.recorded")


@dataclass(frozen=True)
class Event:
    """One journal entry: sequence number, wall-clock time, kind, facts."""

    seq: int
    timestamp: float
    kind: str
    fields: Dict[str, object] = field(default_factory=dict)

    def line(self) -> str:
        """Stable wire rendering: ``<seq> <unix_ts> <kind> k=v ...``."""
        parts = [str(self.seq), f"{self.timestamp:.3f}", self.kind]
        for key in sorted(self.fields):
            parts.append(f"{key}={self.fields[key]}")
        return " ".join(parts)


class EventLog:
    """Bounded ring buffer of :class:`Event` with one global sequence.

    Thread-safe; ``capacity`` bounds memory (oldest entries rotate out)
    while sequence numbers keep counting, so a gap between the first
    retained ``seq`` and 0 tells a reader exactly how much history was
    lost.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: Deque[Event] = deque(maxlen=capacity)
        self._next_seq = 0

    def record(self, kind: str, **fields: object) -> Event:
        """Append one event; assigns the next sequence number atomically."""
        with self._lock:
            event = Event(self._next_seq, time.time(), kind, dict(fields))
            self._next_seq += 1
            self._entries.append(event)
        _M_RECORDED.inc()
        _LOG.info(f"event.{kind}", seq=event.seq, **fields)
        return event

    def tail(self, n: Optional[int] = None) -> List[Event]:
        """The most recent ``n`` events, oldest first (all if ``None``)."""
        with self._lock:
            entries = list(self._entries)
        if n is not None and n >= 0:
            entries = entries[-n:] if n else []
        return entries

    def since(self, seq: int) -> List[Event]:
        """Events with sequence number strictly greater than ``seq``."""
        with self._lock:
            return [e for e in self._entries if e.seq > seq]

    @property
    def total_recorded(self) -> int:
        with self._lock:
            return self._next_seq

    def clear(self) -> None:
        """Drop retained entries (sequence numbers keep counting)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-wide journal all built-in recorders write to."""
    return _DEFAULT_LOG


def set_event_log(log: EventLog) -> EventLog:
    """Swap the process-wide journal (tests); returns the previous one."""
    global _DEFAULT_LOG
    previous = _DEFAULT_LOG
    _DEFAULT_LOG = log
    return previous
