"""Per-query tracing and the slow-query log.

A :class:`QueryTrace` records what one query (or one fused batch) did at
each stage of the two-phase pipeline (section 4 of the paper): sketch
construction, the filtering scan (serial / fused / parallel pool,
including cache hits and pool fallbacks), candidate-set size, optional
cascade pruning, and exact-distance ranking.  The filtering/ranking cost
split is exactly the knob the paper tunes, so the trace makes the
trade-off visible per query instead of only in offline benchmarks.

A :class:`TraceRecorder` owns the per-engine tracing state: the on/off
switch (tracing builds a trace object per query, so it is opt-in), the
last completed trace, and a bounded ring-buffer :class:`SlowQueryLog`.
The slow-query log is always armed — even with tracing off the engine
measures one total-time pair per query, so queries over the threshold
are never missed — but entries carry stage detail only when tracing was
on when they ran.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from . import context as _context

__all__ = ["QueryTrace", "SlowQueryLog", "TraceRecorder"]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6f}"


class QueryTrace:
    """Stage timings and cardinalities of one query (or fused batch).

    ``stages`` maps stage name to seconds; ``counts`` maps cardinality
    name (``candidates``, ``distance_evals``, ``cache_hits``, ...) to an
    integer.  ``note`` records which scan path answered the filter stage
    (``serial``, ``parallel``, ``cache``, ``parallel_fallback``).
    ``spans`` holds named child spans — one per scan worker when the
    parallel pool answered, each splitting the worker's round trip into
    queue wait, compute, and reply serialization — so a trace shows
    *where* shard time went instead of one opaque parent-side wait.
    Traces are built single-threaded inside one query call; only the
    completed, immutable result is shared.
    """

    __slots__ = (
        "method", "num_queries", "started_at", "total_seconds",
        "stages", "counts", "notes", "spans",
    )

    def __init__(self, method: str, num_queries: int = 1) -> None:
        self.method = method
        self.num_queries = num_queries
        self.started_at = time.time()
        self.total_seconds = 0.0
        self.stages: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.notes: Dict[str, str] = {}
        self.spans: List[Dict[str, object]] = []

    # -- building --------------------------------------------------------
    def add_stage(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def add_count(self, name: str, amount: int) -> None:
        self.counts[name] = self.counts.get(name, 0) + int(amount)

    def note(self, name: str, value: str) -> None:
        self.notes[name] = value

    def add_span(self, name: str, **seconds: float) -> None:
        """Attach a named child span with per-phase timings (seconds).

        E.g. ``trace.add_span("worker.0", queue_wait=..., compute=...,
        reply=...)`` for one scan worker's share of a pooled filter.
        """
        span: Dict[str, object] = {"name": name}
        for key, value in seconds.items():
            span[key] = float(value)
        self.spans.append(span)

    class _StageTimer:
        __slots__ = ("_trace", "_name", "_started")

        def __init__(self, trace: "QueryTrace", name: str) -> None:
            self._trace = trace
            self._name = name

        def __enter__(self) -> "QueryTrace._StageTimer":
            self._started = time.perf_counter()
            return self

        def __exit__(self, exc_type, exc, tb) -> None:
            self._trace.add_stage(
                self._name, time.perf_counter() - self._started
            )

    def stage(self, name: str) -> "QueryTrace._StageTimer":
        """Context manager timing one stage: ``with trace.stage("rank"):``."""
        return QueryTrace._StageTimer(self, name)

    # -- rendering -------------------------------------------------------
    def lines(self) -> List[str]:
        """Stable ``key value`` lines (the ``trace`` command's payload)."""
        out = [
            f"method {self.method}",
            f"queries {self.num_queries}",
            f"total_seconds {self.total_seconds:.6f}",
        ]
        for name in sorted(self.stages):
            out.append(f"stage.{name}_seconds {self.stages[name]:.6f}")
        for name in sorted(self.counts):
            out.append(f"count.{name} {self.counts[name]}")
        for name in sorted(self.notes):
            out.append(f"note.{name} {self.notes[name]}")
        for span in self.spans:
            name = span["name"]
            for key in sorted(k for k in span if k != "name"):
                out.append(f"span.{name}.{key}_seconds {span[key]:.6f}")
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "queries": self.num_queries,
            "started_at": self.started_at,
            "total_seconds": self.total_seconds,
            "stages": dict(self.stages),
            "counts": dict(self.counts),
            "notes": dict(self.notes),
            "spans": [dict(span) for span in self.spans],
        }


class SlowQueryLog:
    """Bounded ring buffer of the most recent over-threshold queries.

    ``threshold_seconds`` is the slowness cutoff; ``capacity`` bounds
    memory (oldest entries fall off).  Thread-safe.
    """

    def __init__(self, capacity: int = 64, threshold_seconds: float = 0.5) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.threshold_seconds = float(threshold_seconds)
        self._lock = threading.Lock()
        self._entries: Deque[QueryTrace] = deque(maxlen=capacity)
        self._total_recorded = 0

    def offer(self, trace: QueryTrace) -> bool:
        """Record ``trace`` if it crossed the threshold; True if kept."""
        if trace.total_seconds < self.threshold_seconds:
            return False
        with self._lock:
            self._entries.append(trace)
            self._total_recorded += 1
        return True

    def entries(self) -> List[QueryTrace]:
        with self._lock:
            return list(self._entries)

    @property
    def total_recorded(self) -> int:
        """Slow queries seen since startup (including ones rotated out)."""
        with self._lock:
            return self._total_recorded

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class TraceRecorder:
    """Per-engine tracing state: switch, last trace, slow-query log.

    ``begin`` returns a fresh :class:`QueryTrace` when tracing is on and
    ``None`` otherwise, so instrumented code guards per-stage work with
    one ``is not None`` check.  ``finish`` stamps the total time,
    publishes the trace as :attr:`last`, and offers it to the slow log.
    The engine also calls :meth:`observe_total` for untraced queries so
    the slow-query log still catches them (with a minimal trace).

    The recorder also owns a :class:`~repro.observability.profiler.
    SamplingProfiler`: idle until started (``setparam profile on``), but
    with :attr:`auto_profile` set (the default) every query that lands
    in the slow-query log additionally triggers one immediate stack
    capture of all threads — so even without continuous sampling, a slow
    query leaves behind the stacks the process was running when it was
    detected.
    """

    def __init__(
        self,
        enabled: bool = False,
        slow_log_capacity: int = 64,
        slow_threshold_seconds: float = 0.5,
    ) -> None:
        from .profiler import SamplingProfiler

        self.enabled = enabled
        self.slow_log = SlowQueryLog(slow_log_capacity, slow_threshold_seconds)
        self.profiler = SamplingProfiler()
        self.auto_profile = True
        self._lock = threading.Lock()
        self._last: Optional[QueryTrace] = None

    # -- switches --------------------------------------------------------
    def set_enabled(self, enabled: bool) -> None:
        self.enabled = bool(enabled)

    def set_slow_threshold(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError("slow-query threshold must be positive")
        self.slow_log.threshold_seconds = float(seconds)

    # -- trace lifecycle -------------------------------------------------
    def begin(self, method: str, num_queries: int = 1) -> Optional[QueryTrace]:
        if not self.enabled:
            # A propagated trace context (the ``trace=`` wire argument,
            # see repro.observability.context) forces tracing for this
            # query even with the local switch off: sampling is the
            # caller's decision, made once at the edge.
            ctx = _context.current()
            if ctx is None or not ctx.sampled:
                return None
        return QueryTrace(method, num_queries)

    def finish(self, trace: QueryTrace, total_seconds: float) -> QueryTrace:
        trace.total_seconds = total_seconds
        with self._lock:
            self._last = trace
        # Deliver to the thread's active trace context (if any) so the
        # command layer can piggyback the span tree on its reply.
        _context.collect(trace)
        if self.slow_log.offer(trace):
            self._capture_slow()
        return trace

    def observe_total(
        self, method: str, num_queries: int, total_seconds: float
    ) -> None:
        """Untraced query completed: feed the slow log if over threshold."""
        if total_seconds < self.slow_log.threshold_seconds:
            return
        trace = QueryTrace(method, num_queries)
        trace.total_seconds = total_seconds
        trace.note("detail", "untraced")
        if self.slow_log.offer(trace):
            self._capture_slow()

    def _capture_slow(self) -> None:
        """A slow query just landed: grab one stack sample of the whole
        process (the offending thread is still inside the query path)."""
        if self.auto_profile:
            self.profiler.capture_slow()

    @property
    def last(self) -> Optional[QueryTrace]:
        with self._lock:
            return self._last

    def clear(self) -> None:
        with self._lock:
            self._last = None
        self.slow_log.clear()
