"""Structured logging for the toolkit's long-running processes.

The server and web front-end previously announced startup (and degraded
modes) with bare ``print()`` to stdout — which pollutes the scripted
command protocol the paper's section 5 use case pipes around.  This
module gives them a tiny structured logger instead:

- One line per event: ``<iso-time> <LEVEL> <name> <event> key=value ...``
- Writes to **stderr** by default, never stdout, so protocol streams and
  tool output stay clean.
- A process-wide quiet switch (:func:`set_quiet`, the CLIs' ``--quiet``
  flag) silences everything below ERROR.

Built on stdlib only; not a ``logging`` wrapper because the toolkit
needs exactly one handler, one format, and a hard guarantee about which
stream it writes to.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import IO, Optional

__all__ = [
    "StructuredLogger",
    "get_logger",
    "set_quiet",
    "set_stream",
    "is_quiet",
]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _Config:
    """Process-wide sink configuration shared by every logger."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.stream: Optional[IO[str]] = None  # None = sys.stderr at call time
        self.quiet = False
        self.min_level = _LEVELS["info"]


_CONFIG = _Config()


def set_quiet(quiet: bool = True) -> None:
    """Silence every event below ERROR (the CLIs' ``--quiet``)."""
    _CONFIG.quiet = bool(quiet)


def is_quiet() -> bool:
    return _CONFIG.quiet


def set_stream(stream: Optional[IO[str]]) -> None:
    """Redirect log output (``None`` restores the stderr default).

    Tests use this to capture events; the stream is resolved at call
    time so late rebinding of ``sys.stderr`` keeps working.
    """
    _CONFIG.stream = stream


def _quote(value: object) -> str:
    text = str(value)
    if text == "" or any(c.isspace() for c in text) or '"' in text:
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'
    return text


class StructuredLogger:
    """Named logger emitting one structured line per event."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _emit(self, level: str, event: str, fields: dict) -> None:
        numeric = _LEVELS[level]
        if numeric < _CONFIG.min_level:
            return
        if _CONFIG.quiet and numeric < _LEVELS["error"]:
            return
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime())
        parts = [stamp, level.upper(), self.name, event]
        parts.extend(f"{k}={_quote(v)}" for k, v in fields.items())
        line = " ".join(parts) + "\n"
        with _CONFIG.lock:
            stream = _CONFIG.stream if _CONFIG.stream is not None else sys.stderr
            try:
                stream.write(line)
                stream.flush()
            except (OSError, ValueError):
                # A closed/broken log sink must never take the server
                # down; the event is dropped.
                pass

    def debug(self, event: str, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)


_LOGGERS: dict = {}
_LOGGERS_LOCK = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """Get (or create) the named logger; instances are cached."""
    with _LOGGERS_LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = StructuredLogger(name)
            _LOGGERS[name] = logger
        return logger
