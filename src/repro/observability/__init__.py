"""Observability layer: metrics registry, per-query tracing, logging.

Production telemetry for the toolkit (the ROADMAP's "heavy traffic"
north star needs more than offline benchmarks):

- :mod:`~repro.observability.metrics` — a dependency-free, thread-safe
  registry of counters, gauges, and fixed-bucket histograms with a
  process-wide default instance and a stable line rendering.
- :mod:`~repro.observability.tracing` — per-query stage timing and
  cardinality traces through the two-phase pipeline, plus a ring-buffer
  slow-query log.
- :mod:`~repro.observability.log` — a structured stderr logger for
  server/web startup and degraded-mode events (keeping stdout clean for
  the scripted command protocol).

See ``docs/OBSERVABILITY.md`` for the metric catalog, trace fields, and
overhead numbers.
"""

from .log import StructuredLogger, get_logger, is_quiet, set_quiet, set_stream
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    delta_snapshots,
    gauge,
    get_registry,
    histogram,
    set_enabled,
)
from .profiler import SamplingProfiler
from .tracing import QueryTrace, SlowQueryLog, TraceRecorder

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "SamplingProfiler",
    "SlowQueryLog",
    "StructuredLogger",
    "TraceRecorder",
    "counter",
    "delta_snapshots",
    "gauge",
    "get_logger",
    "get_registry",
    "histogram",
    "is_quiet",
    "set_enabled",
    "set_quiet",
    "set_stream",
]
