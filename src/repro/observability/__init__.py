"""Observability layer: metrics registry, per-query tracing, logging.

Production telemetry for the toolkit (the ROADMAP's "heavy traffic"
north star needs more than offline benchmarks):

- :mod:`~repro.observability.metrics` — a dependency-free, thread-safe
  registry of counters, gauges, and fixed-bucket histograms with a
  process-wide default instance and a stable line rendering.
- :mod:`~repro.observability.tracing` — per-query stage timing and
  cardinality traces through the two-phase pipeline, plus a ring-buffer
  slow-query log.
- :mod:`~repro.observability.log` — a structured stderr logger for
  server/web startup and degraded-mode events (keeping stdout clean for
  the scripted command protocol).
- :mod:`~repro.observability.context` — cross-node trace propagation:
  :class:`TraceContext` carried as the ``trace=`` wire argument,
  piggybacked span trees, the :class:`TraceStore` behind ``trace get``,
  and the ``trace --tree`` renderer.
- :mod:`~repro.observability.events` — the bounded, monotonically
  sequenced :class:`EventLog` journal of cluster lifecycle (breaker
  transitions, failovers, drills) behind the ``events`` command.

See ``docs/OBSERVABILITY.md`` for the metric catalog, trace fields, and
overhead numbers.
"""

from .context import (
    TraceContext,
    TraceStore,
    decode_trace,
    encode_trace,
    render_trace_tree,
    split_trace_line,
    trace_lines,
)
from .events import Event, EventLog, get_event_log, set_event_log
from .log import StructuredLogger, get_logger, is_quiet, set_quiet, set_stream
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    decode_snapshot,
    delta_snapshots,
    encode_snapshot,
    gauge,
    get_registry,
    histogram,
    set_enabled,
)
from .profiler import SamplingProfiler
from .tracing import QueryTrace, SlowQueryLog, TraceRecorder

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "SamplingProfiler",
    "SlowQueryLog",
    "StructuredLogger",
    "TraceContext",
    "TraceRecorder",
    "TraceStore",
    "counter",
    "decode_snapshot",
    "decode_trace",
    "delta_snapshots",
    "encode_snapshot",
    "encode_trace",
    "gauge",
    "get_event_log",
    "get_logger",
    "get_registry",
    "histogram",
    "is_quiet",
    "render_trace_tree",
    "set_enabled",
    "set_event_log",
    "set_quiet",
    "set_stream",
    "split_trace_line",
    "trace_lines",
]
