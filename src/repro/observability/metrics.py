"""Dependency-free metrics registry: counters, gauges, histograms.

The toolkit's runtime telemetry (per-stage query latency, candidate-set
sizes, cache and pool behavior, WAL fsync cost, server command rates)
all flows through one :class:`MetricsRegistry`.  Design constraints:

- **No dependencies** — stdlib only, so the metrics layer is available
  everywhere the engine is (including fork/spawn scan workers).
- **Thread-safe** — the engine runs as one concurrent program
  (section 3): server threads, acquisition threads, and the query
  pipeline all update metrics concurrently.  Every mutation happens
  under the owning metric's lock.
- **Near-zero cost when disabled** — each instrument checks one
  attribute on its registry before doing any work, so instrumented hot
  paths cost a single predictable branch with metrics off.  Metric
  objects are created once (at import time in the instrumented modules)
  and survive :meth:`MetricsRegistry.reset`, which zeroes values in
  place rather than discarding objects.

The wire rendering (:meth:`MetricsRegistry.render`) is a stable,
line-oriented ``name value`` format documented in
``docs/OBSERVABILITY.md``; the server's ``metrics`` command and the web
UI's ``/metrics`` page both emit it verbatim.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "set_enabled",
]

#: Latency buckets in seconds: 100us .. 10s, roughly 1-2.5-5 per decade.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Cardinality buckets (candidate-set sizes, rows scanned, ...).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
    50000, 100000,
)


class _Metric:
    """Common plumbing: a name, a lock, and the owning registry."""

    __slots__ = ("name", "_lock", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._registry = registry

    @property
    def enabled(self) -> bool:
        return self._registry.enabled


class Counter(_Metric):
    """Monotonic event counter."""

    __slots__ = ("_value",)

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, registry)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _render(self) -> List[str]:
        return [f"{self.name} {self.value}"]


class Gauge(_Metric):
    """Point-in-time value (pool workers, arena rows, ring occupancy)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _render(self) -> List[str]:
        return [f"{self.name} {_fmt(self.value)}"]


class Histogram(_Metric):
    """Fixed-bucket histogram with a running count and sum.

    Buckets are upper bounds (``observe(v)`` lands in the first bucket
    with ``v <= bound``; values above every bound only count toward
    ``_count``/``_sum``).  Rendering emits cumulative bucket counts the
    way Prometheus does, so rates and quantile estimates can be derived
    downstream without the registry keeping per-observation state.
    """

    __slots__ = ("_bounds", "_buckets", "_count", "_sum")

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, registry)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self._bounds = tuple(float(b) for b in buckets)
        self._buckets = [0] * len(self._bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        idx = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._count += 1
            self._sum += value
            if idx < len(self._buckets):
                self._buckets[idx] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, float]:
        """``{count, sum, mean}`` plus per-bound cumulative counts."""
        with self._lock:
            out: Dict[str, float] = {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
            }
            running = 0
            for bound, n in zip(self._bounds, self._buckets):
                running += n
                out[f"le_{_fmt(bound)}"] = running
            return out

    def _reset(self) -> None:
        with self._lock:
            self._buckets = [0] * len(self._bounds)
            self._count = 0
            self._sum = 0.0

    def _render(self) -> List[str]:
        with self._lock:
            lines = [
                f"{self.name}_count {self._count}",
                f"{self.name}_sum {_fmt(self._sum)}",
            ]
            running = 0
            for bound, n in zip(self._bounds, self._buckets):
                running += n
                lines.append(f"{self.name}_bucket_le_{_fmt(bound)} {running}")
            return lines


def _fmt(value: float) -> str:
    """Render a number without float noise: ints stay ints."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Named metric store; get-or-create accessors, stable rendering.

    One process-wide default registry (:func:`get_registry`) backs all
    built-in instrumentation; isolated registries can be created for
    tests or embedded engines.  ``enabled`` gates every mutation — see
    the module docstring for the cost model.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- lifecycle -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric *in place* (instruments keep their handles)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()

    # -- get-or-create ---------------------------------------------------
    def _get(self, name: str, cls, **kwargs) -> _Metric:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, self, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets=buckets)  # type: ignore[return-value]

    # -- introspection ---------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str) -> float:
        """Convenience: a counter/gauge's value (0 for unknown names)."""
        metric = self.get(name)
        if metric is None or isinstance(metric, Histogram):
            return 0.0
        return metric.value  # type: ignore[union-attr]

    def render(self) -> List[str]:
        """Stable line format: one ``name value`` pair per line, sorted
        by metric name (histograms expand to ``_count``/``_sum``/
        ``_bucket_le_*`` lines)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric._render())
        return lines


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry all built-in instruments use."""
    return _DEFAULT_REGISTRY


def set_enabled(enabled: bool) -> None:
    """Master switch on the default registry."""
    _DEFAULT_REGISTRY.enabled = bool(enabled)


def counter(name: str) -> Counter:
    return _DEFAULT_REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _DEFAULT_REGISTRY.gauge(name)


def histogram(
    name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
) -> Histogram:
    return _DEFAULT_REGISTRY.histogram(name, buckets=buckets)
