"""Dependency-free metrics registry: counters, gauges, histograms.

The toolkit's runtime telemetry (per-stage query latency, candidate-set
sizes, cache and pool behavior, WAL fsync cost, server command rates)
all flows through one :class:`MetricsRegistry`.  Design constraints:

- **No dependencies** — stdlib only, so the metrics layer is available
  everywhere the engine is (including fork/spawn scan workers).
- **Thread-safe** — the engine runs as one concurrent program
  (section 3): server threads, acquisition threads, and the query
  pipeline all update metrics concurrently.  Every mutation happens
  under the owning metric's lock.
- **Near-zero cost when disabled** — each instrument checks one
  attribute on its registry before doing any work, so instrumented hot
  paths cost a single predictable branch with metrics off.  Metric
  objects are created once (at import time in the instrumented modules)
  and survive :meth:`MetricsRegistry.reset`, which zeroes values in
  place rather than discarding objects.

The wire rendering (:meth:`MetricsRegistry.render`) is a stable,
line-oriented ``name value`` format documented in
``docs/OBSERVABILITY.md``; the server's ``metrics`` command and the web
UI's ``/metrics`` page both emit it verbatim.
:meth:`MetricsRegistry.render_prometheus` additionally renders the same
registry in the Prometheus text exposition format for scrapers
(``metrics -p`` / the web UI's ``/metrics.txt``).

Cross-process aggregation: scan workers export their registries as
plain-data **snapshots** (:meth:`MetricsRegistry.snapshot`), ship only
the change since the last export (:func:`delta_snapshots`), and the
parent folds deltas into namespaced series with
:meth:`MetricsRegistry.merge_snapshot`.  Counter and histogram merges
are associative and commutative over deltas, so per-worker and rolled-up
series stay consistent no matter the arrival order.
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "set_enabled",
    "delta_snapshots",
    "encode_snapshot",
    "decode_snapshot",
]

#: Latency buckets in seconds: 100us .. 10s, roughly 1-2.5-5 per decade.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Cardinality buckets (candidate-set sizes, rows scanned, ...).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
    50000, 100000,
)


class _Metric:
    """Common plumbing: a name, a lock, and the owning registry."""

    __slots__ = ("name", "_lock", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._registry = registry

    @property
    def enabled(self) -> bool:
        return self._registry.enabled


class Counter(_Metric):
    """Monotonic event counter."""

    __slots__ = ("_value",)

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, registry)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _render(self) -> List[str]:
        return [f"{self.name} {self.value}"]

    def _state(self) -> tuple:
        with self._lock:
            return ("c", self._value)

    def _merge(self, amount: int) -> None:
        """Fold an already-gated cross-process delta in (no enabled check:
        the registry-level merge decided)."""
        with self._lock:
            self._value += int(amount)


class Gauge(_Metric):
    """Point-in-time value (pool workers, arena rows, ring occupancy)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _render(self) -> List[str]:
        return [f"{self.name} {_fmt(self.value)}"]

    def _state(self) -> tuple:
        with self._lock:
            return ("g", self._value)

    def _merge(self, value: float) -> None:
        """Gauges are point-in-time: the incoming value wins."""
        with self._lock:
            self._value = float(value)


class Histogram(_Metric):
    """Fixed-bucket histogram with a running count and sum.

    Buckets are upper bounds (``observe(v)`` lands in the first bucket
    with ``v <= bound``; values above every bound only count toward
    ``_count``/``_sum``).  Rendering emits cumulative bucket counts the
    way Prometheus does, so rates and quantile estimates can be derived
    downstream without the registry keeping per-observation state.
    """

    __slots__ = ("_bounds", "_buckets", "_count", "_sum")

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, registry)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self._bounds = tuple(float(b) for b in buckets)
        self._buckets = [0] * len(self._bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        idx = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._count += 1
            self._sum += value
            if idx < len(self._buckets):
                self._buckets[idx] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``0 <= q <= 1``).

        Finds the bucket holding the ``q * count``-th observation and
        interpolates linearly between its lower and upper bound — the
        same estimator Prometheus' ``histogram_quantile`` uses, with the
        same caveats: the answer is an *estimate* whose error is bounded
        by the bucket width, and observations above the last bound clamp
        to it.  Returns NaN for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            count = self._count
            buckets = list(self._buckets)
        if count == 0:
            return float("nan")
        target = q * count
        running = 0
        lower = 0.0
        for bound, n in zip(self._bounds, buckets):
            if n and running + n >= target:
                fraction = (target - running) / n
                return lower + (bound - lower) * fraction
            running += n
            lower = bound
        # Every counted observation beyond the last bound is clamped.
        return float(self._bounds[-1])

    def snapshot(self) -> Dict[str, float]:
        """``{count, sum, mean}`` plus per-bound cumulative counts."""
        with self._lock:
            out: Dict[str, float] = {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
            }
            running = 0
            for bound, n in zip(self._bounds, self._buckets):
                running += n
                out[f"le_{_fmt(bound)}"] = running
            return out

    def _reset(self) -> None:
        with self._lock:
            self._buckets = [0] * len(self._bounds)
            self._count = 0
            self._sum = 0.0

    def _render(self) -> List[str]:
        with self._lock:
            lines = [
                f"{self.name}_count {self._count}",
                f"{self.name}_sum {_fmt(self._sum)}",
            ]
            running = 0
            for bound, n in zip(self._bounds, self._buckets):
                running += n
                lines.append(f"{self.name}_bucket_le_{_fmt(bound)} {running}")
            return lines

    def _state(self) -> tuple:
        with self._lock:
            return ("h", self._bounds, tuple(self._buckets), self._count, self._sum)

    def _merge(
        self,
        bounds: Sequence[float],
        buckets: Sequence[int],
        count: int,
        total: float,
    ) -> None:
        """Fold per-bucket deltas in; bounds must match exactly."""
        if tuple(float(b) for b in bounds) != self._bounds:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds mismatch on merge"
            )
        with self._lock:
            for i, n in enumerate(buckets):
                self._buckets[i] += int(n)
            self._count += int(count)
            self._sum += float(total)


def _fmt(value: float) -> str:
    """Render a number without float noise: ints stay ints."""
    if math.isnan(value) or math.isinf(value):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, namespace: str) -> str:
    """Sanitize a dotted metric name into a legal Prometheus name."""
    cleaned = _PROM_BAD_CHARS.sub("_", name)
    if namespace:
        cleaned = f"{namespace}_{cleaned}"
    if cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def delta_snapshots(
    prev: Dict[str, tuple], cur: Dict[str, tuple]
) -> Dict[str, tuple]:
    """The change from ``prev`` to ``cur`` (both from
    :meth:`MetricsRegistry.snapshot`), as a snapshot-shaped dict.

    Counters and histograms become differences (metrics absent from
    ``prev`` count from zero); gauges pass through their current value
    when it changed.  Unchanged metrics are omitted, so a worker that
    did nothing ships an empty dict.  Deltas compose: applying the delta
    of ``a -> b`` then ``b -> c`` equals applying the delta ``a -> c``.
    """
    delta: Dict[str, tuple] = {}
    for name, state in cur.items():
        kind = state[0]
        before = prev.get(name)
        if before is not None and before[0] != kind:
            before = None  # type changed (shouldn't happen): count from zero
        if kind == "c":
            base = before[1] if before is not None else 0
            if state[1] != base:
                delta[name] = ("c", state[1] - base)
        elif kind == "g":
            if before is None or before[1] != state[1]:
                delta[name] = state
        elif kind == "h":
            _, bounds, buckets, count, total = state
            if before is not None and before[1] == bounds:
                prev_buckets, prev_count, prev_sum = before[2], before[3], before[4]
            else:
                prev_buckets, prev_count, prev_sum = (0,) * len(buckets), 0, 0.0
            if count != prev_count or total != prev_sum:
                delta[name] = (
                    "h",
                    bounds,
                    tuple(b - p for b, p in zip(buckets, prev_buckets)),
                    count - prev_count,
                    total - prev_sum,
                )
    return delta


def encode_snapshot(snapshot: Dict[str, tuple]) -> str:
    """A snapshot as one line of compact JSON (the ``metrics -s`` wire
    payload).  Inverse of :func:`decode_snapshot`."""
    return json.dumps(snapshot, separators=(",", ":"), sort_keys=True)


def decode_snapshot(text: str) -> Dict[str, tuple]:
    """Parse a :func:`encode_snapshot` payload back into snapshot form.

    JSON has no tuples, so every list is re-tupled — histogram *bounds*
    must compare equal to locally-held tuples for
    :func:`delta_snapshots` and :meth:`Histogram._merge` to match them.
    Raises ``ValueError`` on malformed payloads.
    """
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad metrics snapshot: {exc}") from exc
    if not isinstance(raw, dict):
        raise ValueError("metrics snapshot is not an object")
    out: Dict[str, tuple] = {}
    for name, state in raw.items():
        if not isinstance(state, list) or not state:
            raise ValueError(f"bad metric state for {name!r}")
        kind = state[0]
        if kind in ("c", "g") and len(state) == 2:
            out[name] = (kind, state[1])
        elif kind == "h" and len(state) == 5:
            out[name] = (
                "h",
                tuple(float(b) for b in state[1]),
                tuple(int(n) for n in state[2]),
                int(state[3]),
                float(state[4]),
            )
        else:
            raise ValueError(f"unknown metric state kind {kind!r} for {name!r}")
    return out


class MetricsRegistry:
    """Named metric store; get-or-create accessors, stable rendering.

    One process-wide default registry (:func:`get_registry`) backs all
    built-in instrumentation; isolated registries can be created for
    tests or embedded engines.  ``enabled`` gates every mutation — see
    the module docstring for the cost model.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- lifecycle -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric *in place* (instruments keep their handles)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()

    # -- get-or-create ---------------------------------------------------
    def _get(self, name: str, cls, **kwargs) -> _Metric:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, self, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets=buckets)  # type: ignore[return-value]

    # -- introspection ---------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str) -> float:
        """Convenience: a counter/gauge's value (0 for unknown names)."""
        metric = self.get(name)
        if metric is None or isinstance(metric, Histogram):
            return 0.0
        return metric.value  # type: ignore[union-attr]

    def render(self, prefix: Optional[str] = None) -> List[str]:
        """Stable line format: one ``name value`` pair per line, sorted
        by metric name (histograms expand to ``_count``/``_sum``/
        ``_bucket_le_*`` lines).  ``prefix`` restricts the dump to
        metrics whose *name* starts with it (the server's
        ``metrics <prefix>`` filter)."""
        with self._lock:
            names = sorted(self._metrics)
            if prefix:
                names = [n for n in names if n.startswith(prefix)]
            metrics = [self._metrics[name] for name in names]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric._render())
        return lines

    def render_prometheus(
        self, prefix: Optional[str] = None, namespace: str = "ferret"
    ) -> List[str]:
        """The registry in the Prometheus text exposition format.

        Dots (and any other characters illegal in Prometheus metric
        names) become underscores, every series is namespaced
        (``ferret_engine_queries``), ``# TYPE`` comments declare the
        metric kind, and histograms expand into cumulative
        ``_bucket{le="..."}`` series ending in ``le="+Inf"`` plus
        ``_sum``/``_count`` — exactly what ``histogram_quantile()``
        expects.  ``prefix`` filters on the *original* metric name.
        """
        with self._lock:
            names = sorted(self._metrics)
            if prefix:
                names = [n for n in names if n.startswith(prefix)]
            metrics = [self._metrics[name] for name in names]
        lines: List[str] = []
        for metric in metrics:
            pname = _prom_name(metric.name, namespace)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_fmt(metric.value)}")
            elif isinstance(metric, Histogram):
                _kind, bounds, buckets, count, total = metric._state()
                lines.append(f"# TYPE {pname} histogram")
                running = 0
                for bound, n in zip(bounds, buckets):
                    running += n
                    lines.append(
                        f'{pname}_bucket{{le="{_fmt(bound)}"}} {running}'
                    )
                lines.append(f'{pname}_bucket{{le="+Inf"}} {count}')
                lines.append(f"{pname}_sum {_fmt(total)}")
                lines.append(f"{pname}_count {count}")
        return lines

    # -- cross-process aggregation ---------------------------------------
    def snapshot(self) -> Dict[str, tuple]:
        """Plain-data state of every metric (picklable, lock-consistent
        per metric).  The tuples are ``("c", value)``, ``("g", value)``,
        and ``("h", bounds, buckets, count, sum)``."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric._state() for metric in metrics}

    def merge_snapshot(
        self, snapshot: Dict[str, tuple], prefix: str = ""
    ) -> None:
        """Fold a (delta) snapshot into this registry under ``prefix``.

        Counters and histograms *accumulate* — folding the deltas of
        several workers (in any order, any grouping) yields the same
        totals, which is what makes the ``workers.*`` roll-up well
        defined.  Gauges take the incoming value (last writer wins).
        Metrics are created on first sight; a type or bucket-bounds
        conflict with an existing metric raises ``ValueError``.
        """
        if not self.enabled:
            return
        for name, state in snapshot.items():
            kind = state[0]
            full = prefix + name
            if kind == "c":
                self.counter(full)._merge(state[1])
            elif kind == "g":
                self.gauge(full)._merge(state[1])
            elif kind == "h":
                _, bounds, buckets, count, total = state
                self.histogram(full, buckets=bounds)._merge(
                    bounds, buckets, count, total
                )
            else:
                raise ValueError(f"unknown metric state kind {kind!r}")


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry all built-in instruments use."""
    return _DEFAULT_REGISTRY


def set_enabled(enabled: bool) -> None:
    """Master switch on the default registry."""
    _DEFAULT_REGISTRY.enabled = bool(enabled)


def counter(name: str) -> Counter:
    return _DEFAULT_REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _DEFAULT_REGISTRY.gauge(name)


def histogram(
    name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
) -> Histogram:
    return _DEFAULT_REGISTRY.histogram(name, buckets=buckets)
