"""Cross-node trace propagation: contexts, wire encoding, stitching.

The in-process tracing layer (:mod:`repro.observability.tracing`)
already answers "where did this query spend its time" for one engine.
A cluster query fans out over backend processes, so the same question
needs a *trace context* that crosses the wire — the Dapper model:

- :class:`TraceContext` — ``(trace_id, sampled, hop)`` carried as an
  optional ``trace=`` keyword on any line-protocol command.  A backend
  that receives one activates it for the duration of the command; the
  engine's :class:`~repro.observability.tracing.TraceRecorder` then
  builds a :class:`~repro.observability.tracing.QueryTrace` even when
  server-local tracing is off (sampling is the *caller's* decision).
- **Piggybacked span trees** — the backend appends one reply line
  ``TRACE <trace_id> <payload>`` (base64 of compact JSON, produced by
  :func:`encode_trace`) so the coordinator gets the subtree in the same
  round trip it paid for the answer.  Only requests that carried
  ``trace=`` see the extra line, so existing consumers are unaffected.
- :class:`TraceStore` — a bounded id->tree map behind the ``trace get
  <id>`` command, for traces too old to still be ``trace``'s "last".
- :func:`render_trace_tree` — the ``trace --tree`` pretty-printer: one
  causally-ordered tree of coordinator spans with per-node subtrees and
  the derived network/queue vs engine time split.

The thread-local *active context* is the activation mechanism: the
server handles each connection on its own thread and the engine query
runs synchronously on it, so ``activate``/``collect``/``deactivate``
need no cross-thread handshake.
"""

from __future__ import annotations

import base64
import binascii
import json
import secrets
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TraceContext",
    "TraceStore",
    "activate",
    "collect",
    "current",
    "deactivate",
    "decode_trace",
    "encode_trace",
    "render_trace_tree",
    "split_trace_line",
    "trace_lines",
]

#: Reply-line marker for a piggybacked span tree (`TRACE <id> <payload>`).
TRACE_LINE_PREFIX = "TRACE "


@dataclass(frozen=True)
class TraceContext:
    """One query's identity as it crosses process boundaries.

    ``trace_id`` names the whole distributed query; ``sampled`` tells
    every hop whether to pay the tracing cost (the decision is made once,
    at the edge); ``hop`` counts forwarding depth (0 at the origin), so a
    subtree records how far from the caller it ran.
    """

    trace_id: str
    sampled: bool = True
    hop: int = 0

    #: Wire form: ``<trace_id>:<0|1>:<hop>`` — no spaces, so it never
    #: needs protocol quoting.
    def to_wire(self) -> str:
        return f"{self.trace_id}:{1 if self.sampled else 0}:{self.hop}"

    @classmethod
    def parse(cls, text: str) -> "TraceContext":
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(f"bad trace context {text!r} (want id:sampled:hop)")
        trace_id, sampled, hop = parts
        if not trace_id or not all(c.isalnum() for c in trace_id):
            raise ValueError(f"bad trace id {trace_id!r}")
        if sampled not in ("0", "1"):
            raise ValueError(f"bad sampled flag {sampled!r}")
        if not hop.isdigit():
            raise ValueError(f"bad hop count {hop!r}")
        return cls(trace_id, sampled == "1", int(hop))

    @classmethod
    def generate(cls, sampled: bool = True) -> "TraceContext":
        return cls(secrets.token_hex(8), sampled, 0)

    def child(self) -> "TraceContext":
        """The context to forward on the next hop (same id, hop + 1)."""
        return TraceContext(self.trace_id, self.sampled, self.hop + 1)


# ----------------------------------------------------------------------
# Thread-local activation
# ----------------------------------------------------------------------
_STATE = threading.local()


def activate(context: TraceContext) -> None:
    """Make ``context`` the calling thread's active trace context."""
    _STATE.context = context
    _STATE.collected = []


def current() -> Optional[TraceContext]:
    """The calling thread's active context (``None`` outside a trace)."""
    return getattr(_STATE, "context", None)


def collect(trace: object) -> bool:
    """Attach a finished :class:`QueryTrace` to the active context.

    Called by :meth:`TraceRecorder.finish`; returns whether a context
    was active (so callers can tell piggybacked traces from local ones).
    """
    if getattr(_STATE, "context", None) is None:
        return False
    _STATE.collected.append(trace)
    return True


def deactivate() -> List[object]:
    """Clear the active context; returns the traces collected under it."""
    collected = getattr(_STATE, "collected", [])
    _STATE.context = None
    _STATE.collected = []
    return collected


# ----------------------------------------------------------------------
# Wire encoding of span trees
# ----------------------------------------------------------------------
def encode_trace(tree: Dict[str, object]) -> str:
    """A trace dict as one wire-safe token (base64 of compact JSON)."""
    raw = json.dumps(tree, separators=(",", ":"), sort_keys=True)
    return base64.b64encode(raw.encode("utf-8")).decode("ascii")


def decode_trace(payload: str) -> Dict[str, object]:
    """Inverse of :func:`encode_trace`; raises ``ValueError`` on junk."""
    try:
        raw = base64.b64decode(payload.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise ValueError(f"bad trace payload: {exc}") from exc
    try:
        tree = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"bad trace payload: {exc}") from exc
    if not isinstance(tree, dict):
        raise ValueError("trace payload is not an object")
    return tree


def split_trace_line(
    lines: List[str],
) -> Tuple[List[str], Optional[Dict[str, object]]]:
    """Strip a trailing ``TRACE <id> <payload>`` reply line if present.

    Returns ``(data_lines, tree_or_None)``; the tree gains a
    ``trace_id`` key from the line.  A malformed payload raises
    ``ValueError`` — a backend that *promised* a trace and shipped junk
    is a bug worth surfacing, not ignoring.
    """
    if not lines or not lines[-1].startswith(TRACE_LINE_PREFIX):
        return lines, None
    tail = lines[-1][len(TRACE_LINE_PREFIX):]
    trace_id, _, payload = tail.partition(" ")
    tree = decode_trace(payload)
    tree.setdefault("trace_id", trace_id)
    return lines[:-1], tree


class TraceStore:
    """Bounded, thread-safe ``trace_id -> tree`` map (oldest evicted).

    Backs the ``trace get <id>`` command on both the backends (their
    local subtree) and the coordinator (the stitched cluster tree).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._trees: "OrderedDict[str, Dict[str, object]]" = OrderedDict()

    def put(self, trace_id: str, tree: Dict[str, object]) -> None:
        with self._lock:
            if trace_id in self._trees:
                self._trees.pop(trace_id)
            self._trees[trace_id] = tree
            while len(self._trees) > self.capacity:
                self._trees.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            return self._trees.get(trace_id)

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._trees)

    def __len__(self) -> int:
        with self._lock:
            return len(self._trees)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def trace_lines(tree: Dict[str, object]) -> List[str]:
    """A trace dict in the same stable ``key value`` line format
    :meth:`QueryTrace.lines` uses (the ``trace get`` payload), with
    per-node subtrees flattened under ``node.<shard>.<backend>.*``."""
    out = [
        f"method {tree.get('method', '?')}",
        f"queries {tree.get('queries', 1)}",
        f"total_seconds {float(tree.get('total_seconds', 0.0)):.6f}",
    ]
    if tree.get("trace_id"):
        out.insert(0, f"trace_id {tree['trace_id']}")
    stages = tree.get("stages") or {}
    for name in sorted(stages):
        out.append(f"stage.{name}_seconds {float(stages[name]):.6f}")
    counts = tree.get("counts") or {}
    for name in sorted(counts):
        out.append(f"count.{name} {int(counts[name])}")
    notes = tree.get("notes") or {}
    for name in sorted(notes):
        out.append(f"note.{name} {notes[name]}")
    for span in tree.get("spans") or []:
        name = span.get("name", "?")
        for key in sorted(k for k in span if k != "name"):
            out.append(f"span.{name}.{key}_seconds {float(span[key]):.6f}")
    for key in sorted(tree.get("nodes") or {}):
        sub = tree["nodes"][key]
        for line in trace_lines(sub):
            out.append(f"node.{key}.{line}")
    return out


def _ms(seconds: object) -> str:
    return f"{float(seconds) * 1000.0:.2f}ms"


def _subtree_lines(sub: Dict[str, object], label: str) -> List[str]:
    """One node's engine-stage rows for the tree renderer."""
    rpc = sub.get("rpc_seconds")
    engine = float(sub.get("total_seconds", 0.0))
    head = f"{label} engine={_ms(engine)}"
    if rpc is not None:
        net = max(0.0, float(rpc) - engine)
        head += f" rpc={_ms(rpc)} net+queue={_ms(net)}"
    hop = sub.get("notes", {}).get("hop")
    if hop is not None:
        head += f" hop={hop}"
    rows = [head]
    stages = sub.get("stages") or {}
    for name in sorted(stages):
        rows.append(f"  {name} {_ms(stages[name])}")
    return rows


def render_trace_tree(tree: Dict[str, object]) -> List[str]:
    """Pretty-print a (possibly stitched) trace as an indented tree.

    Coordinator traces show ``scatter``/``gather`` with one branch per
    contacted node (``node.<shard>.<backend>``), each split into the
    backend's engine stages plus the derived network/queue share of the
    round trip.  Single-engine traces degrade to a flat stage list.
    Output is deterministic (sorted keys) so tests can assert on it.
    """
    title = f"trace {tree.get('trace_id', '-')} method={tree.get('method', '?')}"
    title += f" total={_ms(tree.get('total_seconds', 0.0))}"
    notes = tree.get("notes") or {}
    if notes.get("missing_shards"):
        title += f" PARTIAL shards={notes['missing_shards']}"
    out = [title]
    entries: List[List[str]] = []
    stages = tree.get("stages") or {}
    nodes = tree.get("nodes") or {}
    for name in sorted(stages):
        entries.append([f"{name} {_ms(stages[name])}"])
    for span in tree.get("spans") or []:
        name = span.get("name", "?")
        if str(name).startswith("node.") or str(name).startswith("scatter.shard"):
            continue  # summarized by the per-node branches below
        timing = " ".join(
            f"{k}={_ms(span[k])}" for k in sorted(span) if k != "name"
        )
        entries.append([f"{name} {timing}"])
    for key in sorted(nodes):
        entries.append(_subtree_lines(nodes[key], f"node {key}"))
    if notes.get("laggard"):
        entries.append([f"laggard {notes['laggard']}"])
    for i, rows in enumerate(entries):
        last = i == len(entries) - 1
        branch, cont = ("└─ ", "   ") if last else ("├─ ", "│  ")
        out.append(branch + rows[0])
        for row in rows[1:]:
            out.append(cont + row)
    return out
