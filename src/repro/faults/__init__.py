"""Fault-injection framework for crash-recovery and resilience testing.

The storage engine's durability story (WAL + shadow paging + recovery)
is only as credible as the failures it has survived.  This package
supplies:

- :class:`FaultPlan` / :class:`Fault` — deterministic, seeded schedules
  of crashes, torn writes, bit-flips, dropped fsyncs, and I/O errors,
  addressed by operation index.
- :class:`FaultyFilesystem` / :class:`FaultyFile` — an implementation of
  the storage engine's :class:`~repro.storage.fs.FileSystem` seam that
  executes a plan, including power-loss simulation (unsynced data loss).
- :mod:`repro.faults.torture` — a crash-recovery torture driver that
  runs randomized transaction workloads, crashes them at every injection
  point, reopens the store, and checks the recovery invariant:
  *committed transactions are atomic and form a prefix of commit order;
  anything durably committed is fully visible; nothing uncommitted is.*
- :mod:`repro.faults.oracle` — that invariant, factored out (prefix
  matching + durability floor) so any harness can apply it.
- :mod:`repro.faults.nodes` — process-level :class:`NodeFaultPlan`
  schedules (kill / hang / resume / restart of real backend
  subprocesses, addressed by workload-operation index) whose ledger
  feeds the same oracle; the cluster node-kill drills run on it.
"""

from .fs import FaultyFile, FaultyFilesystem
from .nodes import NodeFault, NodeFaultPlan, ShardLedger
from .oracle import InvariantViolation
from .plan import Fault, FaultKind, FaultPlan, SimulatedCrash
from .torture import TortureResult, TortureRunner, WorkloadSpec

__all__ = [
    "Fault",
    "FaultKind",
    "FaultPlan",
    "FaultyFile",
    "FaultyFilesystem",
    "InvariantViolation",
    "NodeFault",
    "NodeFaultPlan",
    "ShardLedger",
    "SimulatedCrash",
    "TortureResult",
    "TortureRunner",
    "WorkloadSpec",
]
