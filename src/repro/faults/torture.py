"""Crash-recovery torture driver.

Runs a deterministic, seeded transaction workload against a
:class:`~repro.storage.kvstore.KVStore` whose I/O goes through a
:class:`~repro.faults.fs.FaultyFilesystem`, lets the fault plan kill it
(simulated power loss, torn write, bit-flip, I/O error), then reopens
the store on the *real* filesystem, runs recovery, and checks the
recovery invariant:

    The recovered state equals the state after some prefix of the
    acknowledged-commit sequence — optionally extended by the single
    transaction whose commit was in flight when the crash hit (its
    COMMIT record may have reached the log even though the call never
    returned).  Atomicity: no transaction is ever half-visible; no
    aborted or unlogged operation is ever visible.  Durability: the
    matched prefix covers at least every transaction the store
    *promised* to keep (a successful WAL fsync or checkpoint after it).

For plans that injected *silent media corruption* (torn writes,
bit-flips), the durability floor is waived — no storage system promises
durability through silent corruption — but the prefix property still
must hold, or the corruption must be *detected*
(:class:`~repro.storage.errors.CorruptionError`), never a silently
wrong answer.

Entry points:

- :meth:`TortureRunner.run_plan` — one scenario under one plan.
- :meth:`TortureRunner.crash_scan` — enumerate every write/fsync
  operation of the workload as a crash point (exhaustive mode).
- :meth:`TortureRunner.random_scan` — seeded random plans mixing all
  fault kinds.
"""

from __future__ import annotations

import os
import random
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..storage.errors import CorruptionError, StorageError
from ..storage.kvstore import KVStore
from ..storage.recovery import RecoveryReport
from .fs import FaultyFilesystem
from .oracle import (
    InvariantViolation,
    Op,
    check_durable_floor,
    match_prefix,
)
from .plan import FaultKind, FaultPlan, SimulatedCrash

__all__ = [
    "WorkloadSpec",
    "WorkloadTrace",
    "TortureResult",
    "TortureRunner",
    "InvariantViolation",
    "generate_workload",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of the randomized transaction workload (all seeded)."""

    num_txns: int = 24
    max_ops_per_txn: int = 4
    key_space: int = 32
    value_size: int = 24
    delete_fraction: float = 0.25
    trees: Tuple[str, ...] = ("alpha", "beta")
    sync_policy: str = "commit"
    sync_batch: int = 4
    #: Checkpoint after every N commits (0 = never during the workload).
    checkpoint_every: int = 0
    page_size: int = 4096


def generate_workload(spec: WorkloadSpec, seed: int) -> List[List[Op]]:
    """The seeded transaction list: ``txns[i]`` is a list of ops."""
    rng = random.Random(seed)
    txns: List[List[Op]] = []
    for _ in range(spec.num_txns):
        ops: List[Op] = []
        for _ in range(rng.randint(1, spec.max_ops_per_txn)):
            tree = rng.choice(spec.trees)
            key = f"k{rng.randrange(spec.key_space):04d}".encode()
            if rng.random() < spec.delete_fraction:
                ops.append((tree, key, None))
            else:
                value = bytes(rng.getrandbits(8) for _ in range(spec.value_size))
                ops.append((tree, key, value))
        txns.append(ops)
    return txns


@dataclass
class WorkloadTrace:
    """What the workload managed to do before the plan ended it."""

    #: Transaction indices whose ``commit()`` returned, in commit order.
    committed_txns: List[int] = field(default_factory=list)
    #: Transaction whose commit was in flight when the crash hit, if any.
    in_flight: Optional[int] = None
    #: Filesystem op counter right after each acknowledged commit.
    commit_marks: List[int] = field(default_factory=list)
    #: ``(op_counter, commits_covered)`` per successful checkpoint.
    checkpoint_marks: List[Tuple[int, int]] = field(default_factory=list)
    crashed: bool = False


@dataclass
class TortureResult:
    """Outcome of one torture scenario."""

    outcome: str  # "recovered" | "detected_corruption" | "completed"
    committed: int  # transactions whose commit() returned
    matched_prefix: int = -1  # which prefix the recovered state equals
    durable_floor: int = 0  # commits the store promised to keep
    fault_triggered: bool = False
    crashed: bool = False
    report: Optional[RecoveryReport] = None
    detail: str = ""


class TortureRunner:
    """Drives seeded workloads through fault plans and verifies recovery."""

    def __init__(self, spec: Optional[WorkloadSpec] = None) -> None:
        self.spec = spec if spec is not None else WorkloadSpec()

    # ------------------------------------------------------------------
    # Workload execution
    # ------------------------------------------------------------------
    def _run_workload(
        self, directory: str, fs: FaultyFilesystem, seed: int
    ) -> WorkloadTrace:
        """Run the workload until completion or until a fault ends it."""
        spec = self.spec
        txns = generate_workload(spec, seed)
        trace = WorkloadTrace()
        current: Optional[int] = None
        try:
            store = KVStore(
                directory,
                page_size=spec.page_size,
                sync_policy=spec.sync_policy,
                sync_batch=spec.sync_batch,
                auto_checkpoint_ops=0,
                fs=fs,
            )
            for index, ops in enumerate(txns):
                current = index
                try:
                    txn = store.begin()
                    for tree, key, value in ops:
                        if value is None:
                            txn.delete(tree, key)
                        else:
                            txn.put(tree, key, value)
                    txn.commit()
                except OSError:
                    # Injected transient I/O error: the WAL rolled the
                    # partial transaction back; the workload carries on.
                    current = None
                    continue
                except StorageError:
                    # Store latched into failed/read-only state — stop
                    # writing, treat the rest as a graceful shutdown.
                    current = None
                    break
                current = None
                trace.committed_txns.append(index)
                trace.commit_marks.append(fs.op_count)
                if (
                    spec.checkpoint_every
                    and len(trace.committed_txns) % spec.checkpoint_every == 0
                ):
                    try:
                        store.checkpoint()
                        trace.checkpoint_marks.append(
                            (fs.op_count, len(trace.committed_txns))
                        )
                    except (OSError, StorageError):
                        break
            # Clean completion: close without checkpointing so the WAL
            # (not the page file) carries the tail — the harder path.
            try:
                store.close(checkpoint=False)
            except (OSError, StorageError):
                pass
        except (OSError, StorageError):
            # Fault during store construction: it never opened.
            pass
        except SimulatedCrash:
            trace.crashed = True
            trace.in_flight = current
        finally:
            fs.simulate_power_loss()
        return trace

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def _durable_floor(self, fs: FaultyFilesystem, trace: WorkloadTrace) -> int:
        """How many leading commits the store *promised* to keep.

        Silent-corruption faults (torn writes, bit-flips) void the
        promise entirely; otherwise a commit is durable if the plan
        never loses unsynced data, if a real WAL fsync happened at or
        after its last write, or if a checkpoint covered it.
        """
        damaged = any(
            f.kind in (FaultKind.TORN, FaultKind.BITFLIP)
            for f in fs.plan.triggered
        )
        if damaged:
            return 0
        floor = 0
        wal_fsyncs = [
            op
            for op, path in fs.fsync_log
            if os.path.basename(path).startswith("wal.")
        ]
        last_wal_fsync = max(wal_fsyncs) if wal_fsyncs else -1
        for index, mark in enumerate(trace.commit_marks):
            # ``mark`` is the op counter right after the commit, so its
            # writes all have op < mark; an fsync at op >= mark - 1
            # (its own commit fsync, or any later one) covers them.
            if not fs.plan.lose_unsynced or last_wal_fsync >= mark - 1:
                floor = index + 1
        for _op, covered in trace.checkpoint_marks:
            floor = max(floor, covered)
        return floor

    def _verify(
        self, directory: str, seed: int, trace: WorkloadTrace, floor: int
    ) -> Tuple[int, Optional[RecoveryReport]]:
        """Reopen on the real filesystem and match a committed prefix.

        The actual judgement lives in :mod:`repro.faults.oracle` so the
        node-kill drills apply the identical prefix + durability rule.
        """
        txns = generate_workload(self.spec, seed)
        with KVStore(directory, auto_checkpoint_ops=0) as store:
            report = store.last_recovery
            recovered: Dict[str, Dict[bytes, bytes]] = {
                tree: dict(store.items(tree)) for tree in store.tree_names()
            }
        matched = match_prefix(
            recovered, txns, trace.committed_txns, in_flight=trace.in_flight
        )
        check_durable_floor(matched, floor)
        return matched, report

    # ------------------------------------------------------------------
    # Scenarios
    # ------------------------------------------------------------------
    def run_plan(self, directory: str, plan: FaultPlan, seed: int) -> TortureResult:
        """One scenario: workload under ``plan``, power loss, recovery."""
        os.makedirs(directory, exist_ok=True)
        fs = FaultyFilesystem(plan)
        trace = self._run_workload(directory, fs, seed)
        floor = self._durable_floor(fs, trace)
        damaged = any(
            f.kind in (FaultKind.TORN, FaultKind.BITFLIP) for f in plan.triggered
        )
        try:
            matched, report = self._verify(directory, seed, trace, floor)
        except (CorruptionError, StorageError) as exc:
            if not damaged:
                raise InvariantViolation(
                    f"recovery failed without injected corruption: {exc}"
                ) from exc
            return TortureResult(
                outcome="detected_corruption",
                committed=len(trace.committed_txns),
                fault_triggered=bool(plan.triggered),
                crashed=trace.crashed,
                detail=str(exc),
            )
        return TortureResult(
            outcome="recovered" if trace.crashed else "completed",
            committed=len(trace.committed_txns),
            matched_prefix=matched,
            durable_floor=floor,
            fault_triggered=bool(plan.triggered),
            crashed=trace.crashed,
            report=report,
        )

    def profile(self, directory: str, seed: int) -> int:
        """Total I/O ops of a fault-free run (the crash-point universe)."""
        fs = FaultyFilesystem(FaultPlan())
        self._run_workload(directory, fs, seed)
        return fs.op_count

    def crash_scan(
        self,
        base_directory: str,
        seed: int,
        stride: int = 1,
        lose_unsynced: bool = False,
        keep_dirs: bool = False,
    ) -> List[TortureResult]:
        """Crash at every ``stride``-th write/fsync op of the workload."""
        total = self.profile(os.path.join(base_directory, "profile"), seed)
        results = []
        for op in range(0, total, max(1, stride)):
            case_dir = os.path.join(base_directory, f"crash{op:05d}")
            plan = FaultPlan.crash_at(op, lose_unsynced=lose_unsynced)
            results.append(self.run_plan(case_dir, plan, seed))
            if not keep_dirs:
                shutil.rmtree(case_dir, ignore_errors=True)
        return results

    def random_scan(
        self,
        base_directory: str,
        workload_seed: int,
        plan_seeds: List[int],
        n_faults: int = 2,
        keep_dirs: bool = False,
    ) -> List[TortureResult]:
        """Seeded random plans mixing crashes, torn writes, bit-flips,
        dropped fsyncs, and I/O errors."""
        total = self.profile(
            os.path.join(base_directory, "profile"), workload_seed
        )
        results = []
        for plan_seed in plan_seeds:
            case_dir = os.path.join(base_directory, f"rand{plan_seed:05d}")
            plan = FaultPlan.random(plan_seed, total, n_faults=n_faults)
            results.append(self.run_plan(case_dir, plan, workload_seed))
            if not keep_dirs:
                shutil.rmtree(case_dir, ignore_errors=True)
        return results
