"""The recovery oracle: prefix matching and durability floors.

Factored out of the crash-recovery torture driver so every fault harness
— the in-process filesystem torture (:mod:`repro.faults.torture`) and
the process-level node-kill drills (:mod:`repro.faults.nodes`) — judges
recovered state by the *same* invariant:

    The recovered state equals the state after some prefix of the
    acknowledged-commit sequence, optionally extended by the single
    transaction whose acknowledgement was in flight when the failure
    hit.  Atomicity: nothing is half-visible; nothing unacknowledged
    (beyond the in-flight one) is visible.  Durability: the matched
    prefix covers at least every transaction the system *promised* to
    keep (the ``floor``).

State is modelled as ``{tree: {key: value}}``; a transaction is a list
of ``(tree, key, value)`` ops with ``value=None`` meaning delete.  The
node drills reuse the model directly by treating each shard as a tree
and each acknowledged insert as a single-op transaction, which is what
makes "no acked insert lost while a replica survives" literally the same
check as "no committed transaction lost across a crash".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "InvariantViolation",
    "Op",
    "apply_ops",
    "match_prefix",
    "check_durable_floor",
]


class InvariantViolation(AssertionError):
    """The recovered state broke the recovery invariant."""


# One logical operation: (tree, key, value) — value None means delete.
Op = Tuple[str, bytes, Optional[bytes]]

State = Dict[str, Dict[bytes, bytes]]


def apply_ops(state: State, ops: Sequence[Op]) -> None:
    """Apply one transaction's ops to ``state`` in place."""
    for tree, key, value in ops:
        if value is None:
            state.setdefault(tree, {}).pop(key, None)
        else:
            state.setdefault(tree, {})[key] = value


def _live(state: State) -> State:
    """Copy of ``state`` without empty trees (a fully-deleted tree and a
    never-created one are indistinguishable after recovery)."""
    return {tree: dict(kv) for tree, kv in state.items() if kv}


def match_prefix(
    recovered: State,
    txns: Sequence[Sequence[Op]],
    sequence: Sequence[int],
    in_flight: Optional[int] = None,
) -> int:
    """The longest ``k`` such that ``recovered`` equals the state after
    the first ``k`` transactions of ``sequence`` (indices into ``txns``).

    ``in_flight`` — a transaction whose acknowledgement never returned —
    is legal as a one-past extension: durable-but-unacknowledged.
    Raises :class:`InvariantViolation` when no prefix matches (a torn,
    reordered, or phantom state).
    """
    candidates = list(sequence)
    if in_flight is not None:
        candidates.append(in_flight)
    recovered_live = _live(dict(recovered))
    state: State = {}
    matched = -1
    for k in range(len(candidates) + 1):
        if k > 0:
            apply_ops(state, txns[candidates[k - 1]])
        if _live(state) == recovered_live:
            matched = k  # keep scanning: prefer the longest match
    if matched < 0:
        raise InvariantViolation(
            f"recovered state matches no acknowledged prefix "
            f"(acknowledged={len(sequence)}, recovered keys="
            f"{ {t: len(kv) for t, kv in recovered_live.items()} })"
        )
    return matched


def check_durable_floor(matched: int, floor: int) -> None:
    """Durability: the matched prefix must cover every promised commit."""
    if matched < floor:
        raise InvariantViolation(
            f"durability violated: {floor} commits were promised, "
            f"recovered only a {matched}-commit prefix"
        )
