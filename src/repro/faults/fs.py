"""Fault-injecting filesystem: the storage engine's I/O under test.

:class:`FaultyFilesystem` implements the :class:`~repro.storage.fs.FileSystem`
interface the storage engine accepts, wrapping every opened file in a
:class:`FaultyFile`.  A single monotone operation counter spans all files
opened through one filesystem instance; each ``write`` and ``fsync``
claims the next index and consults the :class:`~repro.faults.plan.FaultPlan`
before touching the disk.  That gives crash points a stable, replayable
address: "the 17th I/O operation of this workload".

Power-loss semantics: files opened for append (the WAL) track the size
at their last successful fsync.  When a crash fires and the plan has
``lose_unsynced`` set, :meth:`FaultyFilesystem.simulate_power_loss`
truncates each append file back to that size — exactly what a real
power cut does to page-cache data that never reached the platter.
"""

from __future__ import annotations

import os
from typing import BinaryIO, Dict, List, Optional

from ..storage.fs import FileSystem
from .plan import Fault, FaultKind, FaultPlan, SimulatedCrash

__all__ = ["FaultyFile", "FaultyFilesystem"]


class FaultyFile:
    """File wrapper that routes writes and fsyncs through the fault plan.

    Reads, seeks, and metadata calls pass straight through — faults are
    modelled at the write path, where durability bugs live.
    """

    def __init__(self, fs: "FaultyFilesystem", raw: BinaryIO, path: str, mode: str) -> None:
        self._fs = fs
        self._raw = raw
        self.path = path
        self.mode = mode
        self.append = "a" in mode
        #: Size up to which content is known durable (post-fsync).
        self.synced_size = os.fstat(raw.fileno()).st_size if self.append else 0

    # -- faulted operations ---------------------------------------------
    def write(self, data: bytes) -> int:
        op = self._fs.next_op()
        for fault in self._fs.plan.faults_at(op):
            if fault.kind is FaultKind.CRASH:
                self._fs.plan.fire(fault)
                raise SimulatedCrash(op, f"before write to {os.path.basename(self.path)}")
            if fault.kind is FaultKind.TORN:
                self._fs.plan.fire(fault)
                keep = int(len(data) * max(0.0, min(1.0, fault.keep_fraction)))
                self._raw.write(data[:keep])
                self._raw.flush()
                raise SimulatedCrash(op, f"torn write ({keep}/{len(data)} bytes)")
            if fault.kind is FaultKind.ERROR:
                self._fs.plan.fire(fault)
                raise OSError(fault.errno, os.strerror(fault.errno), self.path)
            if fault.kind is FaultKind.BITFLIP:
                self._fs.plan.fire(fault)
                flipped = bytearray(data)
                if flipped:
                    bit = fault.bit_index % (len(flipped) * 8)
                    flipped[bit // 8] ^= 1 << (bit % 8)
                data = bytes(flipped)
        return self._raw.write(data)

    def fsync(self) -> None:
        """Called by the filesystem's ``fsync`` — never directly by users."""
        op = self._fs.next_op()
        for fault in self._fs.plan.faults_at(op):
            if fault.kind is FaultKind.CRASH:
                self._fs.plan.fire(fault)
                raise SimulatedCrash(op, f"before fsync of {os.path.basename(self.path)}")
            if fault.kind is FaultKind.ERROR:
                self._fs.plan.fire(fault)
                raise OSError(fault.errno, os.strerror(fault.errno), self.path)
        if self._fs.plan.drops_fsync(op):
            self._fs.plan.fire(Fault(FaultKind.DROP_FSYNC, op))
            return  # silently lie, like a volatile write cache
        self._raw.flush()
        os.fsync(self._raw.fileno())
        self._fs.fsync_log.append((op, self.path))
        if self.append:
            self.synced_size = os.fstat(self._raw.fileno()).st_size

    # -- pass-throughs ---------------------------------------------------
    def read(self, size: int = -1) -> bytes:
        return self._raw.read(size)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._raw.seek(offset, whence)

    def tell(self) -> int:
        return self._raw.tell()

    def flush(self) -> None:
        self._raw.flush()

    def truncate(self, size: Optional[int] = None) -> int:
        if size is None:
            size = self._raw.tell()
        self._raw.flush()
        os.ftruncate(self._raw.fileno(), size)
        return size

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        if not self._raw.closed:
            self._raw.close()

    @property
    def closed(self) -> bool:
        return self._raw.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class FaultyFilesystem(FileSystem):
    """A :class:`FileSystem` whose write path obeys a :class:`FaultPlan`."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.op_count = 0
        #: ``(op_index, path)`` of every fsync that really reached disk.
        self.fsync_log: List[tuple] = []
        self._files: List[FaultyFile] = []
        self._paths: Dict[str, FaultyFile] = {}

    def next_op(self) -> int:
        op = self.op_count
        self.op_count += 1
        return op

    # -- FileSystem interface -------------------------------------------
    def open(self, path: str, mode: str) -> FaultyFile:
        wrapped = FaultyFile(self, open(path, mode), path, mode)
        self._files.append(wrapped)
        self._paths[path] = wrapped
        return wrapped

    def fsync(self, fileobj: FaultyFile) -> None:
        fileobj.fsync()

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def getsize(self, path: str) -> int:
        return os.path.getsize(path)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    # -- crash handling --------------------------------------------------
    def simulate_power_loss(self) -> None:
        """Apply crash semantics and drop all handles.

        With ``plan.lose_unsynced``, append-mode files lose everything
        written after their last successful fsync (page-cache loss);
        without it, the kernel is assumed to have flushed on its own (a
        crash where the cache happened to survive).  Either way every
        wrapped handle is closed: the process hosting the store is gone.
        """
        for wrapped in self._files:
            wrapped.close()
            if (
                self.plan.lose_unsynced
                and wrapped.append
                and os.path.exists(wrapped.path)
                and os.path.getsize(wrapped.path) > wrapped.synced_size
            ):
                os.truncate(wrapped.path, wrapped.synced_size)
        self._files.clear()
        self._paths.clear()
