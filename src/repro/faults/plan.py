"""Deterministic fault plans for the injection framework.

A :class:`FaultPlan` maps *operation indices* to faults.  The faulty
filesystem counts every ``write`` and ``fsync`` it performs (one global
counter per plan, in execution order), and before executing operation
``n`` asks the plan whether a fault fires there.  Because the counter is
global and the workload is deterministic, a plan like
``FaultPlan.crash_at(17)`` reproduces the exact same crash point on
every run — which is what lets the torture driver enumerate *every*
injection point of a workload and replay failures from a seed.

Fault kinds
-----------
``CRASH``
    Raise :class:`SimulatedCrash` *before* the operation (power loss
    just before write N reached the disk).
``TORN``
    Perform only a prefix of the write, then raise
    :class:`SimulatedCrash` (power loss mid-sector).
``BITFLIP``
    Flip one bit of the written payload (silent media corruption; the
    WAL/page CRCs must catch it on the read side).
``DROP_FSYNC``
    Turn an ``fsync`` into a silent no-op — data stays in the simulated
    volatile cache and is lost if a crash follows.
``ERROR``
    Raise ``OSError`` with a chosen errno (ENOSPC, EIO, ...) without
    performing the operation; the store must surface it and stay
    consistent.
"""

from __future__ import annotations

import enum
import errno as _errno
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["FaultKind", "Fault", "FaultPlan", "SimulatedCrash"]


class SimulatedCrash(BaseException):
    """Injected power loss.

    Deliberately a ``BaseException`` so that ``except Exception``
    blocks inside the code under test cannot swallow it — a real power
    cut is not catchable either.
    """

    def __init__(self, op_index: int, detail: str = "") -> None:
        super().__init__(f"simulated crash at op {op_index}" + (f": {detail}" if detail else ""))
        self.op_index = op_index


class FaultKind(enum.Enum):
    CRASH = "crash"
    TORN = "torn"
    BITFLIP = "bitflip"
    DROP_FSYNC = "drop_fsync"
    ERROR = "error"


@dataclass(frozen=True)
class Fault:
    """One fault armed at one operation index."""

    kind: FaultKind
    op_index: int
    #: TORN: fraction of the payload that reaches disk (0.0 — nothing).
    keep_fraction: float = 0.5
    #: BITFLIP: which bit of the payload to flip (modulo its length).
    bit_index: int = 0
    #: ERROR: the errno to raise.
    errno: int = _errno.EIO


class FaultPlan:
    """A deterministic schedule of faults plus crash-semantics knobs.

    ``lose_unsynced``: when a crash fires, writes that were never
    fsynced are rolled back by the faulty filesystem's power-loss
    simulation (append files are truncated to their last synced size).
    This models the real difference between ``write()`` reaching the
    page cache and ``fsync()`` reaching the platter, and is what makes
    ``DROP_FSYNC`` faults observable.
    """

    def __init__(self, faults: Optional[List[Fault]] = None, lose_unsynced: bool = False) -> None:
        self.lose_unsynced = lose_unsynced
        self._by_op: Dict[int, List[Fault]] = {}
        # Half-open [start, end) op ranges where every fsync is dropped.
        self._fsync_drop_ranges: List[tuple] = []
        self.triggered: List[Fault] = []
        for fault in faults or []:
            self.add(fault)

    # -- construction helpers -------------------------------------------
    def add(self, fault: Fault) -> "FaultPlan":
        self._by_op.setdefault(fault.op_index, []).append(fault)
        return self

    def drop_fsyncs(self, start: int, end: int = 1 << 62) -> "FaultPlan":
        """Drop every fsync whose op index lands in ``[start, end)``."""
        self._fsync_drop_ranges.append((start, end))
        if not self.lose_unsynced:
            self.lose_unsynced = True
        return self

    @classmethod
    def crash_at(cls, op_index: int, lose_unsynced: bool = False) -> "FaultPlan":
        return cls([Fault(FaultKind.CRASH, op_index)], lose_unsynced=lose_unsynced)

    @classmethod
    def torn_write_at(
        cls, op_index: int, keep_fraction: float = 0.5, lose_unsynced: bool = False
    ) -> "FaultPlan":
        return cls(
            [Fault(FaultKind.TORN, op_index, keep_fraction=keep_fraction)],
            lose_unsynced=lose_unsynced,
        )

    @classmethod
    def bitflip_at(cls, op_index: int, bit_index: int = 0) -> "FaultPlan":
        return cls([Fault(FaultKind.BITFLIP, op_index, bit_index=bit_index)])

    @classmethod
    def error_at(cls, op_index: int, err: int = _errno.ENOSPC) -> "FaultPlan":
        return cls([Fault(FaultKind.ERROR, op_index, errno=err)])

    @classmethod
    def drop_fsync_from(cls, op_index: int) -> "FaultPlan":
        """Drop every fsync from ``op_index`` onward.

        Fsync loss is rarely a single event — a buggy controller drops
        them until the crash — so this covers the rest of the run.
        """
        return cls(lose_unsynced=True).drop_fsyncs(op_index)

    @classmethod
    def random(cls, seed: int, total_ops: int, n_faults: int = 1) -> "FaultPlan":
        """A seeded random plan over a workload known to span ``total_ops``."""
        rng = random.Random(seed)
        plan = cls(lose_unsynced=rng.random() < 0.5)
        for _ in range(max(1, n_faults)):
            kind = rng.choice(list(FaultKind))
            op = rng.randrange(max(1, total_ops))
            if kind is FaultKind.DROP_FSYNC:
                plan.drop_fsyncs(op)
                # An undetectable fsync drop needs a crash after it.
                crash_op = rng.randrange(op, max(op + 1, total_ops))
                plan.add(Fault(FaultKind.CRASH, crash_op))
                continue
            plan.add(
                Fault(
                    kind,
                    op,
                    keep_fraction=rng.random(),
                    bit_index=rng.randrange(4096),
                    errno=rng.choice([_errno.ENOSPC, _errno.EIO]),
                )
            )
        return plan

    # -- queries ---------------------------------------------------------
    def faults_at(self, op_index: int) -> List[Fault]:
        return self._by_op.get(op_index, [])

    def drops_fsync(self, op_index: int) -> bool:
        return any(start <= op_index < end for start, end in self._fsync_drop_ranges)

    def fire(self, fault: Fault) -> None:
        """Record that a fault actually triggered (for assertions/repro)."""
        self.triggered.append(fault)

    @property
    def max_op(self) -> int:
        return max(self._by_op) if self._by_op else -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flat = [f for fl in self._by_op.values() for f in fl]
        return f"FaultPlan({flat!r}, lose_unsynced={self.lose_unsynced})"
