"""Process-level node fault plans for the cluster drills.

The filesystem torture driver addresses faults by I/O-operation index;
this module does the same at the *node* level: a :class:`NodeFaultPlan`
is a deterministic schedule of kill / hang / resume / restart actions
addressed by workload-operation index, executed against the real
backend subprocesses of a
:class:`~repro.cluster.supervisor.ClusterSupervisor` mid-workload.

Invariant checking reuses the recovery oracle
(:mod:`repro.faults.oracle`) verbatim: each shard is a tree, each
acknowledged cluster insert is a single-op transaction, and the set of
inserts still visible after the drill must be a prefix of the
acknowledged sequence — with the durability floor covering every acked
insert on shards that kept at least one replica alive throughout
(:func:`verify_shard_inserts`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..observability.log import get_logger
from .oracle import InvariantViolation, check_durable_floor, match_prefix

__all__ = [
    "NodeFault",
    "NodeFaultPlan",
    "ShardLedger",
    "verify_shard_inserts",
]

_LOG = get_logger("faults.nodes")

_ACTIONS = ("kill", "hang", "resume", "restart")


@dataclass(frozen=True)
class NodeFault:
    """One scheduled process-level action.

    ``at_op`` addresses the workload operation *before* which the fault
    fires (operation 0 = before anything runs), mirroring the I/O-op
    addressing of :class:`~repro.faults.plan.FaultPlan`.
    """

    at_op: int
    action: str
    backend: int

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.at_op < 0:
            raise ValueError("at_op must be >= 0")


class NodeFaultPlan:
    """Deterministic schedule of node faults, fired by operation index."""

    def __init__(self, faults: Iterable[NodeFault]) -> None:
        self.faults = sorted(faults, key=lambda f: f.at_op)
        self.fired: List[NodeFault] = []
        self._cursor = 0

    def fire_due(self, op_index: int, supervisor) -> List[NodeFault]:
        """Execute every fault scheduled at or before ``op_index``.

        ``supervisor`` duck-types
        :class:`~repro.cluster.supervisor.ClusterSupervisor`: its
        ``backends[i]`` must offer kill/hang/resume/restart.
        """
        fired_now: List[NodeFault] = []
        while (
            self._cursor < len(self.faults)
            and self.faults[self._cursor].at_op <= op_index
        ):
            fault = self.faults[self._cursor]
            self._cursor += 1
            backend = supervisor.backends[fault.backend]
            _LOG.info(
                "node_fault",
                op=op_index,
                action=fault.action,
                backend=fault.backend,
            )
            getattr(backend, fault.action)()
            self.fired.append(fault)
            fired_now.append(fault)
        return fired_now

    @property
    def done(self) -> bool:
        return self._cursor >= len(self.faults)

    def disturbed_backends(self) -> frozenset:
        """Backends that were killed or hung at any point (their
        replicas' durability promises are void for floor purposes)."""
        return frozenset(
            f.backend for f in self.fired if f.action in ("kill", "hang")
        )


@dataclass
class ShardLedger:
    """Acknowledged cluster inserts, per shard, in acknowledgement order.

    The drill records every ``insert_file`` acknowledgement here; the
    ledger then phrases visibility checking in the recovery oracle's
    vocabulary (shard = tree, acked insert = committed single-op txn).
    """

    num_shards: int
    acked: Dict[int, List[int]] = field(default_factory=dict)
    #: Insert whose ack never returned when a fault hit, if any.
    in_flight: Optional[int] = None

    def record_ack(self, object_id: int) -> None:
        shard = object_id % self.num_shards
        self.acked.setdefault(shard, []).append(object_id)

    def verify(
        self,
        visible_ids: Sequence[int],
        undisturbed_shards: Iterable[int],
    ) -> Dict[int, int]:
        """Check visibility of acked inserts shard by shard.

        ``visible_ids`` — inserted object ids observable through the
        cluster right now.  ``undisturbed_shards`` — shards with at
        least one replica alive continuously since before the first
        insert: their floor is *every* acked insert; a shard that lost
        replicas may legally have lost a suffix (prefix rule still
        applies).  Returns ``{shard: matched_prefix_length}``; raises
        :class:`InvariantViolation` on any wrong state.
        """
        undisturbed = set(undisturbed_shards)
        visible = set(visible_ids)
        matched_by_shard: Dict[int, int] = {}
        for shard, sequence in sorted(self.acked.items()):
            matched = verify_shard_inserts(
                shard,
                sequence,
                [oid for oid in visible if oid % self.num_shards == shard],
                in_flight=(
                    self.in_flight
                    if self.in_flight is not None
                    and self.in_flight % self.num_shards == shard
                    else None
                ),
                require_all=shard in undisturbed,
            )
            matched_by_shard[shard] = matched
        return matched_by_shard


def verify_shard_inserts(
    shard: int,
    acked_ids: Sequence[int],
    visible_ids: Sequence[int],
    in_flight: Optional[int] = None,
    require_all: bool = True,
) -> int:
    """One shard's insert visibility through the recovery oracle.

    The acked sequence becomes single-op transactions on tree
    ``shard<k>``; the visible set must equal the state after some prefix
    (plus optionally the in-flight insert).  ``require_all`` sets the
    durability floor to the whole sequence — the shard never lost all
    its custody, so losing *any* acked insert is a durability violation,
    not a legal truncation.
    """
    tree = f"shard{shard}"
    txns: List[List] = [
        [(tree, str(oid).encode(), b"1")] for oid in acked_ids
    ]
    if in_flight is not None:
        txns.append([(tree, str(in_flight).encode(), b"1")])
    recovered = {tree: {str(oid).encode(): b"1" for oid in visible_ids}}
    matched = match_prefix(
        recovered,
        txns,
        list(range(len(acked_ids))),
        in_flight=len(acked_ids) if in_flight is not None else None,
    )
    if require_all:
        check_durable_floor(matched, len(acked_ids))
    return matched
