"""Runnable churn workload for the crash-mid-compaction torture drill.

Run as a child process (``python -m repro.faults.churn_drill <dir>
<seed>``): builds an engine with write-through metadata at ``dir``
(WAL fsync on every commit, so an acknowledged op is a durable op),
turns background arena compaction up to an aggressive cadence, and
churns inserts/removes forever, announcing every operation on stdout:

    START insert <oid>
    ACK insert <oid>
    START remove <oid>
    ACK remove <oid>

The supervising test SIGKILLs the process at a random moment — with the
compactor thread overwhelmingly likely mid-pass — then replays the
printed ledger through the recovery oracle
(:func:`repro.faults.oracle.match_prefix`) against the reopened store.

Object payloads are deterministic: insert ``oid`` always carries the
features of :func:`drill_signature(seed, oid) <drill_signature>`, so
the supervisor can regenerate every promised object bit-for-bit and
verify both the recovered *set* and the recovered *contents*.
"""

from __future__ import annotations

import sys

import numpy as np

from ..core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from ..metadata.manager import MetadataManager

__all__ = ["DIM", "build_engine", "drill_signature"]

DIM = 6


def drill_signature(seed: int, oid: int) -> ObjectSignature:
    """The (deterministic) object inserted as ``oid`` by a drill child."""
    rng = np.random.default_rng(seed * 1_000_003 + oid)
    segs = 1 + oid % 3
    return ObjectSignature(
        rng.random((segs, DIM)), rng.random(segs) + 0.1, object_id=oid
    )


def build_engine(directory: str) -> SimilaritySearchEngine:
    """Engine wired exactly like the drill child's (for recovery too)."""
    meta = FeatureMeta(DIM, np.zeros(DIM), np.ones(DIM))
    return SimilaritySearchEngine(
        DataTypePlugin("drill", meta),
        sketch_params=SketchParams(64, meta, seed=7),
        metadata=MetadataManager(directory, sync_policy="commit"),
    )


def _announce(phase: str, op: str, oid: int) -> None:
    sys.stdout.write(f"{phase} {op} {oid}\n")
    sys.stdout.flush()


def run(directory: str, seed: int, max_ops: int = 100_000) -> None:
    engine = build_engine(directory)
    # Aggressive background compaction: near-every removal crosses the
    # dead threshold, so a SIGKILL at a random moment almost certainly
    # lands while a maintenance pass is in flight.
    engine.set_compaction(True, dead_fraction=0.01, interval=0.001)
    live: list = []
    next_id = 0
    for i in range(max_ops):
        if i % 4 == 3 and len(live) > 4:
            victim = live.pop(0)
            _announce("START", "remove", victim)
            engine.remove(victim)
            _announce("ACK", "remove", victim)
        else:
            oid = next_id
            next_id += 1
            _announce("START", "insert", oid)
            engine.insert(drill_signature(seed, oid))
            live.append(oid)
            _announce("ACK", "insert", oid)


def main(argv) -> int:
    if len(argv) < 2:
        print("usage: churn_drill <dir> <seed> [max_ops]", file=sys.stderr)
        return 2
    run(
        argv[0],
        int(argv[1]),
        int(argv[2]) if len(argv) > 2 else 100_000,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main(sys.argv[1:]))
