"""Embedded transactional storage — the toolkit's Berkeley DB substitute.

Provides named B-trees with transactions, a write-ahead log with relaxed
durability, shadow-paging checkpoints, and crash recovery (section 4.1.3
of the paper).
"""

from .btree import BTree
from .errors import (
    CorruptionError,
    KeyTooLargeError,
    StorageError,
    StoreClosedError,
    TransactionError,
)
from .fs import OS_FS, FileSystem, OsFileSystem
from .kvstore import KVStore
from .pager import Meta, Pager
from .recovery import RecoveryReport, replay_segment
from .transaction import Transaction, TxnState
from .wal import SegmentScan, WalRecord, WriteAheadLog

__all__ = [
    "BTree",
    "CorruptionError",
    "FileSystem",
    "KVStore",
    "KeyTooLargeError",
    "Meta",
    "OS_FS",
    "OsFileSystem",
    "Pager",
    "RecoveryReport",
    "SegmentScan",
    "StorageError",
    "StoreClosedError",
    "Transaction",
    "TransactionError",
    "TxnState",
    "WalRecord",
    "WriteAheadLog",
    "replay_segment",
]
