"""Transactions: buffered write sets with read-your-writes semantics.

The store runs a no-steal / no-force protocol: a transaction's writes
live in its private buffer until commit, at which point they are logged
to the WAL and applied to the shared B-trees under the store's commit
lock.  Aborting is therefore free (drop the buffer), and recovery never
has to undo anything — only redo committed transactions.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional, Tuple

from .errors import TransactionError

__all__ = ["TxnState", "Transaction", "TOMBSTONE"]

# Sentinel distinguishing "deleted in this txn" from "not written".
TOMBSTONE = object()


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """Handle returned by ``KVStore.begin()``.

    Usable as a context manager: commits on clean exit, aborts if the
    block raises.
    """

    def __init__(self, store: "object", txid: int) -> None:
        self._store = store
        self.txid = txid
        self.state = TxnState.ACTIVE
        # tree name -> key -> value bytes or TOMBSTONE
        self._writes: Dict[str, Dict[bytes, object]] = {}

    # -- buffered operations --------------------------------------------
    def _check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(f"transaction {self.txid} is {self.state.value}")

    def put(self, tree: str, key: bytes, value: bytes) -> None:
        self._check_active()
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values must be bytes")
        self._writes.setdefault(tree, {})[key] = value

    def delete(self, tree: str, key: bytes) -> None:
        self._check_active()
        self._writes.setdefault(tree, {})[key] = TOMBSTONE

    def get(self, tree: str, key: bytes) -> Optional[bytes]:
        """Read-your-writes lookup: own buffer first, then committed state."""
        self._check_active()
        buffered = self._writes.get(tree, {})
        if key in buffered:
            value = buffered[key]
            return None if value is TOMBSTONE else value  # type: ignore[return-value]
        return self._store.get(tree, key)

    def pending_writes(self) -> Iterator[Tuple[str, bytes, object]]:
        """Yield ``(tree, key, value-or-TOMBSTONE)`` in deterministic order."""
        for tree in sorted(self._writes):
            for key in sorted(self._writes[tree]):
                yield tree, key, self._writes[tree][key]

    @property
    def num_writes(self) -> int:
        return sum(len(w) for w in self._writes.values())

    # -- lifecycle -------------------------------------------------------
    def commit(self) -> None:
        self._check_active()
        self._store._commit_transaction(self)
        self.state = TxnState.COMMITTED

    def abort(self) -> None:
        self._check_active()
        self._writes.clear()
        self.state = TxnState.ABORTED

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is TxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
