"""Injectable filesystem seam for the storage engine.

`WriteAheadLog`, `Pager`, and `KVStore` perform all file I/O through a
:class:`FileSystem` object instead of calling ``open``/``os`` directly.
The default, :data:`OS_FS`, is a thin pass-through to the real OS; the
fault-injection framework (:mod:`repro.faults`) provides an alternative
implementation that deterministically injects crashes, torn writes,
dropped fsyncs, bit-flips, and I/O errors at chosen operation points —
which is how the crash-recovery torture suite exercises every injection
point without monkeypatching.

The interface is intentionally tiny: exactly the calls the storage
engine makes, nothing more.
"""

from __future__ import annotations

import os
from typing import BinaryIO

__all__ = ["FileSystem", "OsFileSystem", "OS_FS"]


class FileSystem:
    """The file operations the storage engine needs.

    ``fsync`` takes the file object (not a descriptor) so that wrapped
    implementations can track per-file sync state.
    """

    def open(self, path: str, mode: str) -> BinaryIO:
        raise NotImplementedError

    def fsync(self, fileobj: BinaryIO) -> None:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def getsize(self, path: str) -> int:
        raise NotImplementedError

    def unlink(self, path: str) -> None:
        raise NotImplementedError


class OsFileSystem(FileSystem):
    """Pass-through to the real OS filesystem."""

    def open(self, path: str, mode: str) -> BinaryIO:
        return open(path, mode)

    def fsync(self, fileobj: BinaryIO) -> None:
        fileobj.flush()
        os.fsync(fileobj.fileno())

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def getsize(self, path: str) -> int:
        return os.path.getsize(path)

    def unlink(self, path: str) -> None:
        os.unlink(path)


#: Shared default instance — stateless, safe to reuse everywhere.
OS_FS = OsFileSystem()
