"""Page file with copy-on-write allocation and double-buffered meta blocks.

The store's durable state is a single page file.  Pages are never
overwritten in place within a checkpoint epoch (shadow paging): updated
B-tree nodes are written to freshly allocated pages, and a checkpoint
becomes visible by atomically writing one of two small, checksummed meta
blocks at the front of the file.  A crash mid-checkpoint therefore leaves
the previous checkpoint fully intact — recovery picks the newest meta
block whose CRC validates.

Layout::

    [meta block 0][meta block 1][page 0][page 1]...

Meta blocks are ``META_SIZE`` bytes each; pages are ``page_size`` bytes.
Page ids index the page area (page 0 starts at ``2 * META_SIZE``).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .errors import CorruptionError, StorageError
from .fs import OS_FS, FileSystem

__all__ = ["Meta", "Pager", "DEFAULT_PAGE_SIZE", "META_SIZE"]

DEFAULT_PAGE_SIZE = 4096
META_SIZE = 256
_META_MAGIC = b"FERRETDB"
# magic(8) checkpoint_id(Q) page_size(I) next_page_id(Q) catalog_root(q)
# freelist_root(q) wal_seq(Q) crc(I)
_META_FMT = "<8sQIQqqQ"
_PAGE_HEADER_FMT = "<IQ"  # crc32(payload), payload length is implicit
_PAGE_HEADER_SIZE = struct.calcsize(_PAGE_HEADER_FMT)


@dataclass
class Meta:
    """Durable root of one checkpoint."""

    checkpoint_id: int = 0
    page_size: int = DEFAULT_PAGE_SIZE
    next_page_id: int = 0
    catalog_root: int = -1  # -1 = empty tree
    freelist_root: int = -1
    wal_seq: int = 0

    def pack(self) -> bytes:
        body = struct.pack(
            _META_FMT,
            _META_MAGIC,
            self.checkpoint_id,
            self.page_size,
            self.next_page_id,
            self.catalog_root,
            self.freelist_root,
            self.wal_seq,
        )
        crc = zlib.crc32(body)
        return (body + struct.pack("<I", crc)).ljust(META_SIZE, b"\0")

    @classmethod
    def unpack(cls, raw: bytes) -> Optional["Meta"]:
        body_size = struct.calcsize(_META_FMT)
        if len(raw) < body_size + 4:
            return None
        body = raw[:body_size]
        (crc,) = struct.unpack_from("<I", raw, body_size)
        if zlib.crc32(body) != crc:
            return None
        magic, ckpt, psize, nxt, cat, free, wal = struct.unpack(_META_FMT, body)
        if magic != _META_MAGIC:
            return None
        return cls(ckpt, psize, nxt, cat, free, wal)


class Pager:
    """Page allocator + cache over the page file.

    Allocation discipline (shadow paging): pages on the free list were
    released by an already-durable checkpoint and may be reused; pages
    freed during the current epoch go to ``pending_free`` and only join
    the free list once the next checkpoint is durable.
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        fs: Optional[FileSystem] = None,
    ) -> None:
        self.path = path
        self.fs = fs if fs is not None else OS_FS
        create = not self.fs.exists(path) or self.fs.getsize(path) == 0
        self._file = self.fs.open(path, "r+b" if not create else "w+b")
        self.page_size = page_size
        self._cache: Dict[int, bytes] = {}
        self.staged: Set[int] = set()  # written since last flush
        self.pending_free: List[int] = []
        self._freelist_chain: List[int] = []
        if create:
            self.meta = Meta(page_size=page_size)
            self.free_list: List[int] = []
            self._write_meta_block(0, self.meta)
            self._write_meta_block(1, self.meta)
            self._file.flush()
            self.fs.fsync(self._file)
        else:
            self.meta = self._load_newest_meta()
            self.page_size = self.meta.page_size
            self.free_list = self._load_freelist(self.meta.freelist_root)

    # -- meta blocks ---------------------------------------------------
    def _write_meta_block(self, slot: int, meta: Meta) -> None:
        self._file.seek(slot * META_SIZE)
        self._file.write(meta.pack())

    def _load_newest_meta(self) -> Meta:
        metas = []
        for slot in (0, 1):
            self._file.seek(slot * META_SIZE)
            meta = Meta.unpack(self._file.read(META_SIZE))
            if meta is not None:
                metas.append(meta)
        if not metas:
            raise CorruptionError(f"{self.path}: no valid meta block")
        return max(metas, key=lambda m: m.checkpoint_id)

    # -- page io -------------------------------------------------------
    def _offset(self, page_id: int) -> int:
        return 2 * META_SIZE + page_id * self.page_size

    def allocate(self) -> int:
        """Allocate a page id for this epoch (free list, then file growth)."""
        if self.free_list:
            return self.free_list.pop()
        page_id = self.meta.next_page_id
        self.meta.next_page_id += 1
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page; reusable only after the next durable checkpoint."""
        self.pending_free.append(page_id)

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Stage a page payload; it reaches disk at the next flush."""
        if len(payload) > self.page_size - _PAGE_HEADER_SIZE:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self.page_size - _PAGE_HEADER_SIZE}"
            )
        self._cache[page_id] = payload
        self.staged.add(page_id)

    def read_page(self, page_id: int) -> bytes:
        """Return a page payload, from cache or disk (CRC-verified)."""
        cached = self._cache.get(page_id)
        if cached is not None:
            return cached
        self._file.seek(self._offset(page_id))
        raw = self._file.read(self.page_size)
        if len(raw) < _PAGE_HEADER_SIZE:
            raise CorruptionError(f"page {page_id}: short read")
        crc, length = struct.unpack_from(_PAGE_HEADER_FMT, raw)
        payload = raw[_PAGE_HEADER_SIZE : _PAGE_HEADER_SIZE + length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise CorruptionError(f"page {page_id}: checksum mismatch")
        self._cache[page_id] = payload
        return payload

    @property
    def max_payload(self) -> int:
        return self.page_size - _PAGE_HEADER_SIZE

    def flush_pages(self, page_ids: Set[int]) -> None:
        """Write the given staged pages to disk (no meta flip, no fsync)."""
        for page_id in sorted(page_ids):
            payload = self._cache[page_id]
            header = struct.pack(_PAGE_HEADER_FMT, zlib.crc32(payload), len(payload))
            block = (header + payload).ljust(self.page_size, b"\0")
            self._file.seek(self._offset(page_id))
            self._file.write(block)
            self.staged.discard(page_id)

    # -- freelist persistence -------------------------------------------
    # The free list is stored as a chain of pages: each page holds
    # [next_page(-1 terminates)] [count] [page ids...].
    def _freelist_capacity(self) -> int:
        return (self.max_payload - 16) // 8

    def write_freelist(self, ids: List[int]) -> int:
        """Persist ``ids`` as a fresh page chain; returns the head page id.

        Chain pages are always allocated from file growth (never from the
        free list) so the persisted ids and the chain's own pages cannot
        overlap.
        """
        if not ids:
            return -1
        cap = self._freelist_capacity()
        chunks = [ids[i : i + cap] for i in range(0, len(ids), cap)]
        head = -1
        for chunk in reversed(chunks):
            page_id = self.meta.next_page_id
            self.meta.next_page_id += 1
            payload = struct.pack("<qq", head, len(chunk)) + struct.pack(
                f"<{len(chunk)}q", *chunk
            )
            self.write_page(page_id, payload)
            head = page_id
        return head

    def _load_freelist(self, head: int) -> List[int]:
        ids: List[int] = []
        page_id = head
        while page_id >= 0:
            payload = self.read_page(page_id)
            nxt, count = struct.unpack_from("<qq", payload)
            ids.extend(struct.unpack_from(f"<{count}q", payload, 16))
            # The chain's own pages are immediately reusable next epoch.
            self.pending_free.append(page_id)
            page_id = nxt
        return ids

    def commit_checkpoint(self, catalog_root: int, wal_seq: int) -> Meta:
        """Make the current state durable: flush pages, flip meta, fsync.

        Ordering is the whole point: (1) all data pages hit disk and are
        fsynced, (2) the meta block naming them is written and fsynced.
        A crash between the two leaves the previous meta valid.
        """
        # The previous chain written this session (if any) is superseded.
        self.pending_free.extend(self._freelist_chain)
        self._freelist_chain = []
        # Persist the new free list: still-allocatable survivors plus the
        # pages freed during this epoch (safe to reuse once this meta is
        # durable, which is exactly when this list becomes readable).
        to_persist = list(self.free_list) + list(self.pending_free)
        freelist_root = self.write_freelist(to_persist)
        chain = freelist_root
        while chain >= 0:
            self._freelist_chain.append(chain)
            nxt, _count = struct.unpack_from("<qq", self._cache[chain])
            chain = nxt
        self.flush_pages(set(self.staged))
        self._file.flush()
        self.fs.fsync(self._file)

        new_meta = Meta(
            checkpoint_id=self.meta.checkpoint_id + 1,
            page_size=self.page_size,
            next_page_id=self.meta.next_page_id,
            catalog_root=catalog_root,
            freelist_root=freelist_root,
            wal_seq=wal_seq,
        )
        self._write_meta_block(new_meta.checkpoint_id % 2, new_meta)
        self._file.flush()
        self.fs.fsync(self._file)
        self.meta = new_meta
        # Pages freed during the finished epoch are now safe to reuse.
        self.free_list = self.free_list + self.pending_free
        self.pending_free = []
        return new_meta

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
