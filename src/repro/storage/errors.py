"""Exception hierarchy for the embedded storage engine."""

from __future__ import annotations

__all__ = [
    "StorageError",
    "CorruptionError",
    "KeyTooLargeError",
    "TransactionError",
    "StoreClosedError",
]


class StorageError(Exception):
    """Base class for all storage-engine failures."""


class CorruptionError(StorageError):
    """A page, WAL record, or meta block failed its checksum or framing."""


class KeyTooLargeError(StorageError):
    """A key exceeds the maximum size a B-tree node can host."""


class TransactionError(StorageError):
    """Illegal transaction state transition (e.g. commit after abort)."""


class StoreClosedError(StorageError):
    """Operation attempted on a closed store."""
