"""Copy-on-write B-tree over the page file.

Keys and values are byte strings; keys are ordered lexicographically
(Berkeley DB's default B-tree comparator).  Nodes are serialized one per
page; values too large to inline on a node page are spilled to overflow
page chains.  All structural updates follow the shadow-paging discipline:
a node touched for the first time in a checkpoint epoch is copied to a
freshly allocated page, so the durable tree of the previous checkpoint
stays intact until the next meta flip.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import CorruptionError, KeyTooLargeError
from .pager import Pager

__all__ = ["BTree"]

_LEAF = 1
_INTERNAL = 2
_OVERFLOW = 3

MAX_KEY_SIZE = 1024
_INLINE_VALUE_FLAG = 0
_OVERFLOW_VALUE_FLAG = 1


class _Node:
    """In-memory B-tree node; ``epoch`` tracks COW freshness."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children", "epoch")

    def __init__(
        self,
        page_id: int,
        is_leaf: bool,
        keys: Optional[List[bytes]] = None,
        values: Optional[List[bytes]] = None,
        children: Optional[List[int]] = None,
        epoch: int = -1,
    ) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys = keys if keys is not None else []
        self.values = values if values is not None else []  # leaf payloads
        self.children = children if children is not None else []
        self.epoch = epoch


class BTree:
    """One named B-tree rooted at ``root`` (page id, -1 = empty).

    The owning store supplies the pager and the current epoch counter;
    the tree reports its (possibly new) root page id after every mutation
    via the ``root`` attribute.
    """

    def __init__(self, pager: Pager, root: int = -1) -> None:
        self.pager = pager
        self.root = root
        self.epoch = 0
        self._nodes: Dict[int, _Node] = {}
        # Inline values must leave room for several entries per node.
        self._inline_limit = max(64, pager.max_payload // 8)
        self._node_budget = pager.max_payload

    # ------------------------------------------------------------------
    # Node io
    # ------------------------------------------------------------------
    def _load(self, page_id: int) -> _Node:
        node = self._nodes.get(page_id)
        if node is not None:
            return node
        payload = self.pager.read_page(page_id)
        node = self._deserialize(page_id, payload)
        self._nodes[page_id] = node
        return node

    def _store(self, node: _Node) -> None:
        self.pager.write_page(node.page_id, self._serialize(node))
        self._nodes[node.page_id] = node

    def _shadow(self, node: _Node) -> _Node:
        """Ensure ``node`` is writable in the current epoch (COW)."""
        if node.epoch == self.epoch:
            return node
        new_id = self.pager.allocate()
        self.pager.free(node.page_id)
        self._nodes.pop(node.page_id, None)
        node.page_id = new_id
        node.epoch = self.epoch
        self._nodes[new_id] = node
        return node

    def dirty_pages(self) -> List[int]:
        """Page ids written in the current epoch (for checkpoint flushing)."""
        return [n.page_id for n in self._nodes.values() if n.epoch == self.epoch]

    def begin_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _serialize(self, node: _Node) -> bytes:
        parts = [struct.pack("<BH", _LEAF if node.is_leaf else _INTERNAL, len(node.keys))]
        if node.is_leaf:
            for key, value in zip(node.keys, node.values):
                parts.append(struct.pack("<H", len(key)))
                parts.append(key)
                parts.append(value)  # already encoded (flag + body)
        else:
            for key in node.keys:
                parts.append(struct.pack("<H", len(key)))
                parts.append(key)
            parts.append(struct.pack(f"<{len(node.children)}q", *node.children))
        return b"".join(parts)

    def _deserialize(self, page_id: int, payload: bytes) -> _Node:
        kind, nkeys = struct.unpack_from("<BH", payload)
        offset = 3
        keys: List[bytes] = []
        if kind == _LEAF:
            values: List[bytes] = []
            for _ in range(nkeys):
                (klen,) = struct.unpack_from("<H", payload, offset)
                offset += 2
                keys.append(payload[offset : offset + klen])
                offset += klen
                flag = payload[offset]
                if flag == _INLINE_VALUE_FLAG:
                    (vlen,) = struct.unpack_from("<I", payload, offset + 1)
                    end = offset + 5 + vlen
                else:
                    end = offset + 1 + 16  # flag + head page + total length
                values.append(payload[offset:end])
                offset = end
            return _Node(page_id, True, keys, values, epoch=-1)
        if kind == _INTERNAL:
            for _ in range(nkeys):
                (klen,) = struct.unpack_from("<H", payload, offset)
                offset += 2
                keys.append(payload[offset : offset + klen])
                offset += klen
            children = list(struct.unpack_from(f"<{nkeys + 1}q", payload, offset))
            return _Node(page_id, False, keys, children=children, epoch=-1)
        raise CorruptionError(f"page {page_id}: bad node type {kind}")

    # -- value encoding (inline vs overflow chain) ---------------------
    def _encode_value(self, value: bytes) -> bytes:
        if len(value) <= self._inline_limit:
            return struct.pack("<BI", _INLINE_VALUE_FLAG, len(value)) + value
        head = self._write_overflow(value)
        return struct.pack("<BqQ", _OVERFLOW_VALUE_FLAG, head, len(value))

    def _decode_value(self, encoded: bytes) -> bytes:
        flag = encoded[0]
        if flag == _INLINE_VALUE_FLAG:
            (vlen,) = struct.unpack_from("<I", encoded, 1)
            return encoded[5 : 5 + vlen]
        head, total = struct.unpack_from("<qQ", encoded, 1)
        return self._read_overflow(head, total)

    def _free_value(self, encoded: bytes) -> None:
        """Release overflow pages owned by a replaced/deleted value."""
        if encoded[0] != _OVERFLOW_VALUE_FLAG:
            return
        head, _total = struct.unpack_from("<qQ", encoded, 1)
        page_id = head
        while page_id >= 0:
            payload = self.pager.read_page(page_id)
            (nxt,) = struct.unpack_from("<q", payload)
            self.pager.free(page_id)
            page_id = nxt

    def _write_overflow(self, value: bytes) -> int:
        chunk_size = self.pager.max_payload - 9  # next(8) + type(1)
        chunks = [value[i : i + chunk_size] for i in range(0, len(value), chunk_size)]
        head = -1
        for chunk in reversed(chunks):
            page_id = self.pager.allocate()
            self.pager.write_page(
                page_id, struct.pack("<qB", head, _OVERFLOW) + chunk
            )
            head = page_id
        return head

    def _read_overflow(self, head: int, total: int) -> bytes:
        parts: List[bytes] = []
        page_id = head
        while page_id >= 0:
            payload = self.pager.read_page(page_id)
            (nxt, kind) = struct.unpack_from("<qB", payload)
            if kind != _OVERFLOW:
                raise CorruptionError(f"page {page_id}: expected overflow page")
            parts.append(payload[9:])
            page_id = nxt
        data = b"".join(parts)
        if len(data) != total:
            raise CorruptionError(
                f"overflow chain {head}: expected {total} bytes, got {len(data)}"
            )
        return data

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @staticmethod
    def _bisect(keys: List[bytes], key: bytes) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def get(self, key: bytes) -> Optional[bytes]:
        if self.root < 0:
            return None
        node = self._load(self.root)
        while not node.is_leaf:
            idx = self._bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                idx += 1
            node = self._load(node.children[idx])
        idx = self._bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return self._decode_value(node.values[idx])
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values must be bytes")
        if len(key) > MAX_KEY_SIZE:
            raise KeyTooLargeError(f"key of {len(key)} bytes exceeds {MAX_KEY_SIZE}")
        encoded = self._encode_value(value)
        if self.root < 0:
            root = _Node(self.pager.allocate(), True, epoch=self.epoch)
            root.keys = [key]
            root.values = [encoded]
            self._store(root)
            self.root = root.page_id
            return
        root_obj = self._load(self.root)
        split = self._insert(root_obj, key, encoded)
        # _shadow mutates the node object in place, so root_obj.page_id is
        # the root's current id even after COW.
        self.root = root_obj.page_id
        if split is not None:
            sep, right_id = split
            new_root = _Node(self.pager.allocate(), False, epoch=self.epoch)
            new_root.keys = [sep]
            new_root.children = [self.root, right_id]
            self._store(new_root)
            self.root = new_root.page_id

    def _insert(
        self, node: _Node, key: bytes, encoded: bytes
    ) -> Optional[Tuple[bytes, int]]:
        node = self._shadow(node)
        if node.is_leaf:
            idx = self._bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                self._free_value(node.values[idx])
                node.values[idx] = encoded
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, encoded)
            return self._finalize(node)
        idx = self._bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            idx += 1
        child = self._load(node.children[idx])
        split = self._insert(child, key, encoded)
        node.children[idx] = child.page_id  # child may have been shadowed
        if split is not None:
            sep, right_id = split
            node.keys.insert(idx, sep)
            node.children.insert(idx + 1, right_id)
        return self._finalize(node)

    def _finalize(self, node: _Node) -> Optional[Tuple[bytes, int]]:
        """Store ``node``; split it first if it overflows the page budget."""
        if self._node_size(node) <= self._node_budget or len(node.keys) < 2:
            self._store(node)
            return None
        mid = len(node.keys) // 2
        right = _Node(self.pager.allocate(), node.is_leaf, epoch=self.epoch)
        if node.is_leaf:
            sep = node.keys[mid]
            right.keys = node.keys[mid:]
            right.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
        else:
            sep = node.keys[mid]
            right.keys = node.keys[mid + 1 :]
            right.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        self._store(node)
        self._store(right)
        return sep, right.page_id

    def _node_size(self, node: _Node) -> int:
        size = 3
        for key in node.keys:
            size += 2 + len(key)
        if node.is_leaf:
            size += sum(len(v) for v in node.values)
        else:
            size += 8 * len(node.children)
        return size

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True if it was present."""
        if self.root < 0:
            return False
        root = self._load(self.root)
        removed = self._delete(root, key)
        self.root = root.page_id  # COW-safe: same object, possibly new id
        # Collapse a root that lost all separators.
        if not root.is_leaf and len(root.children) == 1:
            only_child = root.children[0]
            self.pager.free(root.page_id)
            self._nodes.pop(root.page_id, None)
            self.root = only_child
        elif root.is_leaf and not root.keys:
            self.pager.free(root.page_id)
            self._nodes.pop(root.page_id, None)
            self.root = -1
        return removed

    def _delete(self, node: _Node, key: bytes) -> bool:
        node = self._shadow(node)
        if node.is_leaf:
            idx = self._bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                self._free_value(node.values[idx])
                del node.keys[idx]
                del node.values[idx]
                self._store(node)
                return True
            self._store(node)
            return False
        idx = self._bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            idx += 1
        child = self._load(node.children[idx])
        removed = self._delete(child, key)
        node.children[idx] = child.page_id
        if self._node_size(child) < self._node_budget // 4 or not child.keys:
            self._rebalance(node, idx)
        self._store(node)
        return removed

    def _rebalance(self, parent: _Node, idx: int) -> None:
        """Fix an underfull child of ``parent`` by borrowing or merging."""
        child = self._load(parent.children[idx])
        # Prefer merging with a sibling when the combined node fits.
        for sibling_idx in (idx - 1, idx + 1):
            if 0 <= sibling_idx < len(parent.children):
                sibling = self._load(parent.children[sibling_idx])
                left, right = (sibling, child) if sibling_idx < idx else (child, sibling)
                sep_pos = min(idx, sibling_idx)
                merged_size = (
                    self._node_size(left)
                    + self._node_size(right)
                    + len(parent.keys[sep_pos])
                )
                if merged_size <= self._node_budget:
                    left = self._shadow(left)
                    if left.is_leaf:
                        left.keys.extend(right.keys)
                        left.values.extend(right.values)
                    else:
                        left.keys.append(parent.keys[sep_pos])
                        left.keys.extend(right.keys)
                        left.children.extend(right.children)
                    self.pager.free(right.page_id)
                    self._nodes.pop(right.page_id, None)
                    del parent.keys[sep_pos]
                    del parent.children[sep_pos + 1]
                    parent.children[sep_pos] = left.page_id
                    self._store(left)
                    return
        # Borrowing: move one entry from a richer sibling.
        for sibling_idx in (idx - 1, idx + 1):
            if not (0 <= sibling_idx < len(parent.children)):
                continue
            sibling = self._load(parent.children[sibling_idx])
            if len(sibling.keys) <= 1:
                continue
            sibling = self._shadow(sibling)
            child_s = self._shadow(child)
            sep_pos = min(idx, sibling_idx)
            if sibling_idx < idx:  # borrow from left sibling's tail
                if child_s.is_leaf:
                    child_s.keys.insert(0, sibling.keys.pop())
                    child_s.values.insert(0, sibling.values.pop())
                    parent.keys[sep_pos] = child_s.keys[0]
                else:
                    child_s.keys.insert(0, parent.keys[sep_pos])
                    parent.keys[sep_pos] = sibling.keys.pop()
                    child_s.children.insert(0, sibling.children.pop())
            else:  # borrow from right sibling's head
                if child_s.is_leaf:
                    child_s.keys.append(sibling.keys.pop(0))
                    child_s.values.append(sibling.values.pop(0))
                    parent.keys[sep_pos] = sibling.keys[0]
                else:
                    child_s.keys.append(parent.keys[sep_pos])
                    parent.keys[sep_pos] = sibling.keys.pop(0)
                    child_s.children.append(sibling.children.pop(0))
            parent.children[idx] = child_s.page_id
            parent.children[sibling_idx] = sibling.page_id
            self._store(sibling)
            self._store(child_s)
            return

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def items(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        prefix: Optional[bytes] = None,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(key, value)`` in key order within ``[start, end)``.

        ``prefix`` is a convenience: equivalent to the half-open range
        covering exactly keys with that prefix.
        """
        if prefix is not None:
            start = prefix
            end = prefix[:-1] + bytes([prefix[-1] + 1]) if prefix and prefix[-1] < 255 else None
            if prefix and prefix[-1] == 255:
                end = prefix + b"\xff" * MAX_KEY_SIZE  # conservative upper bound
        if self.root < 0:
            return
        yield from self._iter_node(self._load(self.root), start, end)

    def _iter_node(
        self, node: _Node, start: Optional[bytes], end: Optional[bytes]
    ) -> Iterator[Tuple[bytes, bytes]]:
        if node.is_leaf:
            for key, encoded in zip(node.keys, node.values):
                if start is not None and key < start:
                    continue
                if end is not None and key >= end:
                    return
                yield key, self._decode_value(encoded)
            return
        for i, child_id in enumerate(node.children):
            # child i holds keys in [keys[i-1], keys[i]); prune whole
            # subtrees outside [start, end).
            if start is not None and i < len(node.keys) and node.keys[i] < start:
                continue
            if end is not None and i > 0 and node.keys[i - 1] >= end:
                return
            yield from self._iter_node(self._load(child_id), start, end)

    def keys(self, **kwargs) -> Iterator[bytes]:
        for key, _value in self.items(**kwargs):
            yield key

    def __len__(self) -> int:
        return sum(1 for _ in self.items())
