"""Crash recovery: replay committed WAL transactions onto the checkpoint.

On open, the store's page file reflects the last durable checkpoint
(shadow paging guarantees it is internally consistent).  Everything that
committed afterwards lives only in the WAL.  Recovery scans the current
segment, keeps only transactions with a complete BEGIN..COMMIT envelope,
and re-applies their logical operations in commit order.  Replay is
idempotent — puts and deletes of final values — so crashing during or
after recovery and replaying again converges to the same state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .fs import FileSystem
from .wal import REC_BEGIN, REC_COMMIT, REC_DELETE, REC_PUT, WalRecord, WriteAheadLog

__all__ = ["RecoveryReport", "replay_segment"]


@dataclass
class RecoveryReport:
    """What recovery found and did."""

    transactions_seen: int = 0
    transactions_replayed: int = 0
    operations_applied: int = 0
    incomplete_transactions: int = 0
    max_txid: int = 0
    replayed_txids: List[int] = field(default_factory=list)
    #: The segment ended in a damaged record (partial frame, bad CRC,
    #: unparseable payload) rather than at a clean record boundary.
    torn_tail: bool = False
    #: Offset of the first byte past the last intact record.
    valid_bytes: int = 0


def replay_segment(
    path: str,
    apply_put: Callable[[str, bytes, bytes], None],
    apply_delete: Callable[[str, bytes], None],
    fs: Optional[FileSystem] = None,
) -> RecoveryReport:
    """Replay one WAL segment through the given apply callbacks.

    Commit order is the order COMMIT records appear in the log, which is
    the serialization order the commit lock enforced before the crash.
    """
    report = RecoveryReport()
    in_flight: Dict[int, List[WalRecord]] = {}
    committed: List[Tuple[int, List[WalRecord]]] = []

    scan = WriteAheadLog.scan_segment(path, fs=fs)
    report.torn_tail = scan.torn_tail
    report.valid_bytes = scan.valid_bytes
    for record in scan.records:
        report.max_txid = max(report.max_txid, record.txid)
        if record.rec_type == REC_BEGIN:
            report.transactions_seen += 1
            in_flight[record.txid] = []
        elif record.rec_type in (REC_PUT, REC_DELETE):
            # Records for an unknown txid (BEGIN lost to a torn prefix)
            # can't be trusted to be complete; drop them.
            if record.txid in in_flight:
                in_flight[record.txid].append(record)
        elif record.rec_type == REC_COMMIT:
            ops = in_flight.pop(record.txid, None)
            if ops is not None:
                committed.append((record.txid, ops))

    report.incomplete_transactions = len(in_flight)
    for txid, ops in committed:
        for record in ops:
            if record.rec_type == REC_PUT:
                apply_put(record.tree, record.key, record.value)
            else:
                apply_delete(record.tree, record.key)
            report.operations_applied += 1
        report.transactions_replayed += 1
        report.replayed_txids.append(txid)
    return report
