"""Transactional embedded key-value store — the Berkeley DB substitute.

A :class:`KVStore` is a directory holding one page file (``data.db``)
and the current WAL segment.  It exposes named B-trees ("tables" in the
paper's metadata manager), transactions protecting multi-tree updates,
periodic checkpointing, and automatic crash recovery on open.

Durability model (matching section 4.1.3): commits are logged to the WAL
with a relaxed fsync policy; checkpoints make the B-trees durable via
shadow paging and truncate the log.  After a crash the store recovers to
a consistent state containing every checkpointed update plus all
WAL-complete committed transactions.

Concurrency: operations are serialized by a reentrant store lock.  The
toolkit's workloads are read-heavy scans plus occasional ingest bursts,
for which coarse locking is both correct and, in CPython, as fast as
anything finer-grained.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..observability import metrics as _metrics
from .btree import MAX_KEY_SIZE, BTree
from .errors import KeyTooLargeError, StoreClosedError, StorageError
from .fs import OS_FS, FileSystem
from .pager import DEFAULT_PAGE_SIZE, Pager
from .recovery import RecoveryReport, replay_segment
from .transaction import TOMBSTONE, Transaction
from .wal import REC_DELETE, REC_PUT, WalRecord, WriteAheadLog

__all__ = ["KVStore"]

_CATALOG = "__catalog__"

_M_RECOVERIES = _metrics.counter("store.recoveries")
_M_RECOVERED_TXNS = _metrics.counter("store.recovered_txns")
_M_RECOVERED_OPS = _metrics.counter("store.recovered_ops")
_M_TORN_TAILS = _metrics.counter("store.torn_tails_repaired")
_M_CHECKPOINTS = _metrics.counter("store.checkpoints")
_M_CHECKPOINT_SECONDS = _metrics.histogram("store.checkpoint_seconds")
_M_CHECKPOINT_FAILURES = _metrics.counter("store.checkpoint_failures")
_M_ERR_FAILED_CLOSE = _metrics.counter("errors_absorbed.store.failed_close")


class KVStore:
    """Open (creating if necessary) the store in ``directory``.

    Parameters
    ----------
    directory:
        Store location; created if missing.
    page_size:
        Page size for a newly created store (existing stores keep theirs).
    sync_policy / sync_batch:
        WAL fsync policy: ``"commit"`` (fsync every commit), ``"batch"``
        (every ``sync_batch`` commits — the paper's relaxed mode), or
        ``"none"``.
    auto_checkpoint_ops:
        Checkpoint automatically after this many committed operations;
        ``0`` disables (checkpoint explicitly or on close).
    fs:
        Filesystem implementation for all file I/O (defaults to the real
        OS).  The fault-injection framework passes a
        :class:`~repro.faults.fs.FaultyFilesystem` here to exercise the
        store under crashes, torn writes, and I/O errors.
    """

    def __init__(
        self,
        directory: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        sync_policy: str = "batch",
        sync_batch: int = 16,
        auto_checkpoint_ops: int = 10000,
        fs: Optional[FileSystem] = None,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.fs = fs if fs is not None else OS_FS
        self._lock = threading.RLock()
        self._closed = False
        self._failed: Optional[str] = None  # reason, once the store fails
        self._pager = Pager(os.path.join(directory, "data.db"), page_size, fs=self.fs)
        self._epoch = self._pager.meta.checkpoint_id + 1
        self._trees: Dict[str, BTree] = {}
        self._catalog = self._open_tree_at(self._pager.meta.catalog_root)
        self._load_catalog()
        self._wal = WriteAheadLog(
            directory, self._pager.meta.wal_seq, sync_policy, sync_batch, fs=self.fs
        )
        self.last_recovery: Optional[RecoveryReport] = None
        self._next_txid = 1
        self._ops_since_checkpoint = 0
        self.auto_checkpoint_ops = auto_checkpoint_ops
        self._recover()

    # ------------------------------------------------------------------
    # Setup / recovery
    # ------------------------------------------------------------------
    def _open_tree_at(self, root: int) -> BTree:
        tree = BTree(self._pager, root)
        tree.begin_epoch(self._epoch)
        return tree

    def _load_catalog(self) -> None:
        for name_b, root_b in self._catalog.items():
            root = int.from_bytes(root_b, "little", signed=True)
            self._trees[name_b.decode("utf-8")] = self._open_tree_at(root)

    def _recover(self) -> None:
        path = self._wal.segment_path(self._pager.meta.wal_seq)
        report = replay_segment(
            path,
            apply_put=lambda tree, k, v: self._tree(tree).put(k, v),
            apply_delete=lambda tree, k: self._tree(tree).delete(k),
            fs=self.fs,
        )
        self.last_recovery = report
        self._next_txid = report.max_txid + 1
        _M_RECOVERIES.inc()
        _M_RECOVERED_TXNS.inc(report.transactions_replayed)
        _M_RECOVERED_OPS.inc(report.operations_applied)
        if report.torn_tail:
            _M_TORN_TAILS.inc()
            # Repair the tail before accepting any write, even when no
            # committed transaction was replayed: the segment reopens
            # append-mode, so new fsynced commits would otherwise land
            # after the torn frame and the next recovery — which stops
            # at the first damaged record — would silently lose them.
            self._wal.truncate_to(report.valid_bytes)
        if report.operations_applied:
            # Make the recovered state durable immediately so a second
            # crash cannot double the window of vulnerability.
            self.checkpoint()

    # ------------------------------------------------------------------
    # Tree access
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if self._failed is None and self._wal.broken:
            self._failed = "WAL rollback failed"
        if self._failed is not None:
            raise StorageError(
                f"store is in failed state ({self._failed}); reads still "
                "work, reopen the store to restore write access"
            )

    @property
    def failed(self) -> Optional[str]:
        """Failure reason once the store degraded to read-only, else None."""
        return self._failed

    def _tree(self, name: str) -> BTree:
        if name == _CATALOG:
            raise StorageError("reserved tree name")
        tree = self._trees.get(name)
        if tree is None:
            tree = self._open_tree_at(-1)
            self._trees[name] = tree
        return tree

    def tree_names(self) -> List[str]:
        with self._lock:
            return sorted(self._trees)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, tree: str, key: bytes) -> Optional[bytes]:
        with self._lock:
            self._check_open()
            return self._tree(tree).get(key)

    def items(
        self,
        tree: str,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        prefix: Optional[bytes] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[bytes, bytes]]:
        """Materialized ordered scan (a snapshot under the store lock).

        ``limit`` bounds the number of returned pairs, enabling paged
        scans over tables larger than memory (iteration stops as soon as
        the bound is hit; it does not materialize the rest).
        """
        with self._lock:
            self._check_open()
            iterator = self._tree(tree).items(start=start, end=end, prefix=prefix)
            if limit is None:
                return list(iterator)
            return list(itertools.islice(iterator, max(0, limit)))

    def count(self, tree: str) -> int:
        with self._lock:
            self._check_open()
            return len(self._tree(tree))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        with self._lock:
            self._check_writable()
            txn = Transaction(self, self._next_txid)
            self._next_txid += 1
            return txn

    def put(self, tree: str, key: bytes, value: bytes) -> None:
        """Autocommit single put."""
        with self.begin() as txn:
            txn.put(tree, key, value)

    def delete(self, tree: str, key: bytes) -> None:
        """Autocommit single delete."""
        with self.begin() as txn:
            txn.delete(tree, key)

    def _commit_transaction(self, txn: Transaction) -> None:
        with self._lock:
            self._check_writable()
            records = []
            for tree, key, value in txn.pending_writes():
                # Validate everything the B-trees could reject *before*
                # the WAL append: a transaction that is durable in the
                # log but unapplied in memory would resurrect on reopen.
                if len(key) > MAX_KEY_SIZE:
                    raise KeyTooLargeError(
                        f"key of {len(key)} bytes exceeds {MAX_KEY_SIZE}"
                    )
                if value is TOMBSTONE:
                    records.append(WalRecord(REC_DELETE, txn.txid, tree, key))
                else:
                    records.append(
                        WalRecord(REC_PUT, txn.txid, tree, key, value)  # type: ignore[arg-type]
                    )
            if not records:
                return
            # WAL first (write-ahead), then the in-memory trees.
            self._wal.append_transaction(txn.txid, records)
            for record in records:
                target = self._tree(record.tree)
                if record.rec_type == REC_PUT:
                    target.put(record.key, record.value)
                else:
                    target.delete(record.key)
            self._ops_since_checkpoint += len(records)
            if (
                self.auto_checkpoint_ops
                and self._ops_since_checkpoint >= self.auto_checkpoint_ops
            ):
                self.checkpoint()

    def drop_tree(self, tree: str) -> int:
        """Delete every key of a tree; returns how many were removed.

        Implemented as logged deletions (one transaction per batch), so
        the drop is crash-safe like any other write: a crash mid-drop
        recovers to a prefix of the batches.
        """
        removed = 0
        with self._lock:
            self._check_open()
            while True:
                batch = [k for k, _v in self.items(tree, limit=512)]
                if not batch:
                    break
                with self.begin() as txn:
                    for key in batch:
                        txn.delete(tree, key)
                removed += len(batch)
        return removed

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Flush all trees to the page file, flip meta, truncate the WAL.

        A checkpoint that fails part-way is unresumable: the new meta
        block (naming a fresh WAL segment) may or may not be durable, so
        continuing to log into the old segment could silently lose every
        later commit.  The store therefore latches into a read-only
        *failed* state — reads keep working, writes raise
        :class:`StorageError` — until it is reopened, at which point
        recovery picks whichever checkpoint is durable.
        """
        with self._lock:
            self._check_writable()
            checkpoint_started = time.perf_counter()
            try:
                for name, tree in self._trees.items():
                    self._catalog.put(
                        name.encode("utf-8"),
                        tree.root.to_bytes(8, "little", signed=True),
                    )
                new_seq = self._pager.meta.wal_seq + 1
                self._pager.commit_checkpoint(self._catalog.root, new_seq)
                self._wal.rotate(new_seq)
            except Exception as exc:
                # Breadth is intentional: *any* failure here leaves the
                # checkpoint unresumable, and the error is re-raised as
                # StorageError rather than absorbed.
                _M_CHECKPOINT_FAILURES.inc()
                self._failed = f"checkpoint failed: {exc}"
                raise StorageError(self._failed) from exc
            self._epoch = self._pager.meta.checkpoint_id + 1
            self._catalog.begin_epoch(self._epoch)
            for tree in self._trees.values():
                tree.begin_epoch(self._epoch)
            self._ops_since_checkpoint = 0
            _M_CHECKPOINTS.inc()
            _M_CHECKPOINT_SECONDS.observe(
                time.perf_counter() - checkpoint_started
            )

    def close(self, checkpoint: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            if self._failed is None and not self._wal.broken:
                if checkpoint:
                    self.checkpoint()
                self._wal.close()
                self._pager.close()
            else:
                # Best-effort teardown of a failed store: never sync, a
                # failed checkpoint already poisoned the write path.
                # Only I/O and storage-state errors are expected here;
                # anything else is a bug and propagates.
                try:
                    self._wal.close(sync=False)
                except (OSError, StorageError, ValueError):
                    _M_ERR_FAILED_CLOSE.inc()
                try:
                    self._pager.close()
                except (OSError, StorageError, ValueError):
                    _M_ERR_FAILED_CLOSE.inc()
            self._closed = True

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def checkpoint_id(self) -> int:
        return self._pager.meta.checkpoint_id

    @property
    def wal_seq(self) -> int:
        return self._wal.seq

    @property
    def wal_size(self) -> int:
        """Bytes appended to the current WAL segment."""
        return self._wal.size

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "trees": len(self._trees),
                "checkpoint_id": self._pager.meta.checkpoint_id,
                "next_page_id": self._pager.meta.next_page_id,
                "free_pages": len(self._pager.free_list),
                "pending_free_pages": len(self._pager.pending_free),
                "ops_since_checkpoint": self._ops_since_checkpoint,
            }
