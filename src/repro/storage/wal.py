"""Write-ahead log of logical operations.

Commits append BEGIN / PUT / DELETE / COMMIT records to the current WAL
segment *before* the corresponding B-tree pages are considered durable.
A checkpoint flips to a fresh segment and deletes the old one, so the log
only ever covers operations since the last durable checkpoint.

Durability is deliberately relaxed, as in the paper (section 4.1.3):
``sync_policy`` controls whether each commit fsyncs the log
(``"commit"``), fsyncs are batched every N commits (``"batch"``), or
left to the OS (``"none"``).  After a crash, recovery replays only
complete, committed transactions — a torn tail record or a transaction
missing its COMMIT is ignored, which yields consistency with possibly a
few seconds of lost updates, exactly the Berkeley DB configuration the
paper describes.

Record framing: ``<length:u32><crc32:u32><payload>``; payload starts
with a record-type byte and a transaction id.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .errors import StorageError

__all__ = ["WalRecord", "WriteAheadLog", "REC_BEGIN", "REC_PUT", "REC_DELETE", "REC_COMMIT"]

REC_BEGIN = 1
REC_PUT = 2
REC_DELETE = 3
REC_COMMIT = 4

_FRAME_FMT = "<II"
_FRAME_SIZE = struct.calcsize(_FRAME_FMT)


@dataclass(frozen=True)
class WalRecord:
    """One logical log record."""

    rec_type: int
    txid: int
    tree: str = ""
    key: bytes = b""
    value: bytes = b""

    def pack(self) -> bytes:
        tree_b = self.tree.encode("utf-8")
        return (
            struct.pack("<BQH", self.rec_type, self.txid, len(tree_b))
            + tree_b
            + struct.pack("<I", len(self.key))
            + self.key
            + struct.pack("<Q", len(self.value))
            + self.value
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "WalRecord":
        rec_type, txid, tree_len = struct.unpack_from("<BQH", payload)
        offset = 11
        tree = payload[offset : offset + tree_len].decode("utf-8")
        offset += tree_len
        (key_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        key = payload[offset : offset + key_len]
        offset += key_len
        (value_len,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        value = payload[offset : offset + value_len]
        return cls(rec_type, txid, tree, key, value)


class WriteAheadLog:
    """Append-only log over segment files ``<prefix>.<seq>``."""

    def __init__(
        self,
        directory: str,
        seq: int,
        sync_policy: str = "batch",
        batch_size: int = 16,
    ) -> None:
        if sync_policy not in ("commit", "batch", "none"):
            raise StorageError(f"unknown sync policy {sync_policy!r}")
        self.directory = directory
        self.seq = seq
        self.sync_policy = sync_policy
        self.batch_size = max(1, batch_size)
        self._unsynced_commits = 0
        self._file = open(self.segment_path(seq), "ab")

    def segment_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"wal.{seq:08d}")

    def append(self, record: WalRecord) -> None:
        payload = record.pack()
        frame = struct.pack(_FRAME_FMT, len(payload), zlib.crc32(payload))
        self._file.write(frame + payload)
        if record.rec_type == REC_COMMIT:
            self._file.flush()
            if self.sync_policy == "commit":
                os.fsync(self._file.fileno())
            elif self.sync_policy == "batch":
                self._unsynced_commits += 1
                if self._unsynced_commits >= self.batch_size:
                    os.fsync(self._file.fileno())
                    self._unsynced_commits = 0

    def append_transaction(self, txid: int, records: List[WalRecord]) -> None:
        """Append BEGIN, the given ops, COMMIT as one contiguous burst."""
        self.append(WalRecord(REC_BEGIN, txid))
        for record in records:
            self.append(record)
        self.append(WalRecord(REC_COMMIT, txid))

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self._unsynced_commits = 0

    def rotate(self, new_seq: int) -> None:
        """Switch to a fresh segment and delete all older ones."""
        self.sync()
        self._file.close()
        old_seq, self.seq = self.seq, new_seq
        self._file = open(self.segment_path(new_seq), "ab")
        for seq in range(old_seq, new_seq):
            try:
                os.unlink(self.segment_path(seq))
            except FileNotFoundError:
                pass

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()

    # -- replay ---------------------------------------------------------
    @classmethod
    def read_segment(cls, path: str) -> Iterator[WalRecord]:
        """Yield records from a segment, stopping at the first torn frame.

        A partially written tail (crash mid-append) is expected and
        simply terminates the scan; anything before it is intact because
        frames carry CRCs.
        """
        if not os.path.exists(path):
            return
        with open(path, "rb") as fh:
            while True:
                frame = fh.read(_FRAME_SIZE)
                if len(frame) < _FRAME_SIZE:
                    return
                length, crc = struct.unpack(_FRAME_FMT, frame)
                payload = fh.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    return
                try:
                    yield WalRecord.unpack(payload)
                except (struct.error, UnicodeDecodeError):
                    return
