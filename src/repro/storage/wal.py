"""Write-ahead log of logical operations.

Commits append BEGIN / PUT / DELETE / COMMIT records to the current WAL
segment *before* the corresponding B-tree pages are considered durable.
A checkpoint flips to a fresh segment and deletes the old one, so the log
only ever covers operations since the last durable checkpoint.

Durability is deliberately relaxed, as in the paper (section 4.1.3):
``sync_policy`` controls whether each commit fsyncs the log
(``"commit"``), fsyncs are batched every N commits (``"batch"``), or
left to the OS (``"none"``).  After a crash, recovery replays only
complete, committed transactions — a torn tail record or a transaction
missing its COMMIT is ignored, which yields consistency with possibly a
few seconds of lost updates, exactly the Berkeley DB configuration the
paper describes.

All file I/O goes through an injectable :class:`~repro.storage.fs.FileSystem`
so the fault-injection framework (:mod:`repro.faults`) can exercise the
log under crashes, torn writes, dropped fsyncs, and I/O errors.

Record framing: ``<length:u32><crc32:u32><payload>``; payload starts
with a record-type byte and a transaction id.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..observability import metrics as _metrics
from .errors import StorageError
from .fs import OS_FS, FileSystem

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "SegmentScan",
    "REC_BEGIN",
    "REC_PUT",
    "REC_DELETE",
    "REC_COMMIT",
]

REC_BEGIN = 1
REC_PUT = 2
REC_DELETE = 3
REC_COMMIT = 4

_M_APPENDS = _metrics.counter("wal.appends")
_M_COMMITS = _metrics.counter("wal.commits")
_M_FSYNCS = _metrics.counter("wal.fsyncs")
_M_FSYNC_SECONDS = _metrics.histogram("wal.fsync_seconds")
_M_ROLLBACKS = _metrics.counter("wal.rollbacks")
_M_TAIL_REPAIRS = _metrics.counter("wal.tail_repairs")
_M_ROTATIONS = _metrics.counter("wal.rotations")
_M_BROKEN = _metrics.counter("wal.broken")

_FRAME_FMT = "<II"
_FRAME_SIZE = struct.calcsize(_FRAME_FMT)


@dataclass(frozen=True)
class WalRecord:
    """One logical log record."""

    rec_type: int
    txid: int
    tree: str = ""
    key: bytes = b""
    value: bytes = b""

    def pack(self) -> bytes:
        tree_b = self.tree.encode("utf-8")
        return (
            struct.pack("<BQH", self.rec_type, self.txid, len(tree_b))
            + tree_b
            + struct.pack("<I", len(self.key))
            + self.key
            + struct.pack("<Q", len(self.value))
            + self.value
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "WalRecord":
        rec_type, txid, tree_len = struct.unpack_from("<BQH", payload)
        offset = 11
        tree = payload[offset : offset + tree_len].decode("utf-8")
        if len(tree.encode("utf-8")) != tree_len:
            raise ValueError("truncated tree name")
        offset += tree_len
        (key_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        key = payload[offset : offset + key_len]
        offset += key_len
        (value_len,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        value = payload[offset : offset + value_len]
        if len(key) != key_len or len(value) != value_len:
            raise ValueError("record payload shorter than declared lengths")
        return cls(rec_type, txid, tree, key, value)


@dataclass
class SegmentScan:
    """Result of scanning one WAL segment.

    ``torn_tail`` is set when the scan stopped *because of* a damaged
    record — a partial frame header, short payload, CRC mismatch, or an
    unparseable payload — rather than a clean end-of-file at a record
    boundary.  ``valid_bytes`` is the offset of the first byte past the
    last intact record (i.e. where a repair could truncate to).
    """

    records: List[WalRecord] = field(default_factory=list)
    torn_tail: bool = False
    valid_bytes: int = 0


class WriteAheadLog:
    """Append-only log over segment files ``<prefix>.<seq>``."""

    def __init__(
        self,
        directory: str,
        seq: int,
        sync_policy: str = "batch",
        batch_size: int = 16,
        fs: Optional[FileSystem] = None,
    ) -> None:
        if sync_policy not in ("commit", "batch", "none"):
            raise StorageError(f"unknown sync policy {sync_policy!r}")
        self.directory = directory
        self.seq = seq
        self.sync_policy = sync_policy
        self.batch_size = max(1, batch_size)
        self.fs = fs if fs is not None else OS_FS
        self._unsynced_commits = 0
        self._broken = False
        path = self.segment_path(seq)
        self._size = self.fs.getsize(path) if self.fs.exists(path) else 0
        self._file = self.fs.open(path, "ab")

    def segment_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"wal.{seq:08d}")

    @property
    def size(self) -> int:
        """Logical size of the current segment (bytes appended so far)."""
        return self._size

    @property
    def broken(self) -> bool:
        return self._broken

    def _check_usable(self) -> None:
        if self._broken:
            raise StorageError(
                "WAL is broken: a failed append could not be rolled back; "
                "close and reopen the store to recover"
            )

    def _fsync(self) -> None:
        fsync_started = time.perf_counter()
        self.fs.fsync(self._file)
        _M_FSYNCS.inc()
        _M_FSYNC_SECONDS.observe(time.perf_counter() - fsync_started)

    def append(self, record: WalRecord) -> None:
        self._check_usable()
        payload = record.pack()
        frame = struct.pack(_FRAME_FMT, len(payload), zlib.crc32(payload))
        self._file.write(frame + payload)
        self._size += _FRAME_SIZE + len(payload)
        _M_APPENDS.inc()
        if record.rec_type == REC_COMMIT:
            _M_COMMITS.inc()
            self._file.flush()
            if self.sync_policy == "commit":
                self._fsync()
            elif self.sync_policy == "batch":
                self._unsynced_commits += 1
                if self._unsynced_commits >= self.batch_size:
                    self._fsync()
                    self._unsynced_commits = 0

    def append_transaction(self, txid: int, records: List[WalRecord]) -> None:
        """Append BEGIN, the given ops, COMMIT as one contiguous burst.

        If any append fails mid-burst (ENOSPC, EIO, ...), the partial
        transaction is rolled back by truncating the segment to its
        pre-burst size, so a later transaction cannot append after
        half-written frames.  If even the truncate fails, the log is
        marked broken and refuses further appends — recovery on reopen
        ignores the unterminated transaction either way.
        """
        self._check_usable()
        start_size = self._size
        try:
            self.append(WalRecord(REC_BEGIN, txid))
            for record in records:
                self.append(record)
            self.append(WalRecord(REC_COMMIT, txid))
        except Exception:
            _M_ROLLBACKS.inc()
            try:
                self._file.truncate(start_size)
                self._size = start_size
            except OSError:
                # Only an I/O failure of the truncate itself latches the
                # log broken; any other exception here would be a bug in
                # this rollback path and must surface alongside the
                # original append failure.
                self._broken = True
                _M_BROKEN.inc()
            raise

    def sync(self) -> None:
        self._file.flush()
        self._fsync()
        self._unsynced_commits = 0

    def truncate_to(self, size: int) -> None:
        """Cut the current segment back to ``size`` bytes (torn-tail repair).

        Recovery calls this when the segment scan found a damaged tail.
        The segment stays open append-mode across recovery, so without
        the cut new commits would land *after* the torn frame — and the
        next recovery, which stops at the first damaged record, would
        silently drop every one of them.  If the truncate itself fails
        the log is marked broken (writes refuse) rather than risk that
        silent loss.
        """
        self._check_usable()
        if size >= self._size:
            return
        try:
            self._file.truncate(size)
            self._size = size
            _M_TAIL_REPAIRS.inc()
        except OSError:
            self._broken = True
            _M_BROKEN.inc()
            raise

    def rotate(self, new_seq: int) -> None:
        """Switch to a fresh segment and delete all older ones.

        Called only after the checkpoint naming ``new_seq`` is durable,
        so the old segment's content is already superseded — no sync is
        needed (or wanted: it could fail and block the switch).  If the
        new segment cannot be opened, the log is marked broken: logging
        on into the old segment while a durable meta block references
        the new one would silently lose every subsequent commit.
        """
        try:
            self._file.close()
            old_seq, self.seq = self.seq, new_seq
            self._size = 0
            self._unsynced_commits = 0
            self._file = self.fs.open(self.segment_path(new_seq), "ab")
            _M_ROTATIONS.inc()
        except OSError:
            self._broken = True
            _M_BROKEN.inc()
            raise
        for seq in range(old_seq, new_seq):
            try:
                self.fs.unlink(self.segment_path(seq))
            except FileNotFoundError:
                pass

    def close(self, sync: bool = True) -> None:
        """Close the segment, fsyncing first unless ``sync`` is False.

        A failed store passes ``sync=False``: after a botched checkpoint
        the segment's tail is unreliable, and forcing it to disk on the
        way out would only make the garbage durable.
        """
        if not self._file.closed:
            if sync and not self._broken:
                self.sync()
            self._file.close()

    # -- replay ---------------------------------------------------------
    @classmethod
    def scan_segment(cls, path: str, fs: Optional[FileSystem] = None) -> SegmentScan:
        """Scan a segment, stopping cleanly at the first damaged record.

        A partially written tail (crash mid-append) is expected and
        terminates the scan; anything before it is intact because frames
        carry CRCs.  Damage never propagates as ``struct.error`` — the
        scan reports it via :attr:`SegmentScan.torn_tail` instead.
        """
        fs = fs if fs is not None else OS_FS
        scan = SegmentScan()
        if not fs.exists(path):
            return scan
        with fs.open(path, "rb") as fh:
            offset = 0
            while True:
                frame = fh.read(_FRAME_SIZE)
                if len(frame) == 0:
                    return scan  # clean EOF at a record boundary
                if len(frame) < _FRAME_SIZE:
                    scan.torn_tail = True
                    return scan
                length, crc = struct.unpack(_FRAME_FMT, frame)
                payload = fh.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    scan.torn_tail = True
                    return scan
                try:
                    record = WalRecord.unpack(payload)
                except (struct.error, UnicodeDecodeError, ValueError):
                    scan.torn_tail = True
                    return scan
                offset += _FRAME_SIZE + length
                scan.records.append(record)
                scan.valid_bytes = offset

    @classmethod
    def read_segment(
        cls, path: str, fs: Optional[FileSystem] = None
    ) -> Iterator[WalRecord]:
        """Yield the intact records of a segment (compat wrapper)."""
        yield from cls.scan_segment(path, fs=fs).records
