"""Command-line query interface: line protocol, command processor, TCP
server and client (section 4.1.4)."""

from .client import (
    ClientError,
    ClientTimeout,
    FerretClient,
    RetryPolicy,
    ServerDegraded,
)
from .commands import CommandProcessor
from .protocol import (
    Command,
    DegradedError,
    ProtocolError,
    format_error,
    format_ok,
    parse_command,
    quote,
)
from .server import FerretServer, serve_background
from .shell import run_shell

__all__ = [
    "ClientError",
    "ClientTimeout",
    "Command",
    "CommandProcessor",
    "DegradedError",
    "FerretClient",
    "FerretServer",
    "ProtocolError",
    "RetryPolicy",
    "ServerDegraded",
    "format_error",
    "format_ok",
    "parse_command",
    "quote",
    "run_shell",
    "serve_background",
]
