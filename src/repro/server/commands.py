"""Command handlers for the query interface.

Supported commands (section 4.1.4's "various parameters including the
number of results to return, filter parameters, and attributes"):

- ``ping`` — liveness check.
- ``count`` — number of indexed objects.
- ``stat`` — engine storage statistics.
- ``query <object_id> [top=10] [method=filtering] [attr=<expr>]
  [weights=w1,w2,...]`` — similarity search seeded by an indexed object;
  ``attr=`` restricts the search to attribute-query matches first, and
  ``weights=`` overrides the seed's segment weights (the paper's
  "adjusted weights for feature vectors" query parameter — e.g. to
  emphasize one image region).
- ``querymany <id1,id2,...> [top=10] [method=filtering] [attr=<expr>]``
  — batch similarity search seeded by several indexed objects at once;
  runs through the engine's fused multi-query pipeline (one sketch scan
  for the whole batch, concurrent ranking) and answers one
  ``<query_id> <object_id> <distance>`` line per result.
- ``attrquery <expr>`` — attribute-only search; returns object ids.
- ``insertfile <path> [id=<object_id>] [attr.key=value ...]`` — ingest a
  file through the plug-in's segmentation/extraction module; ``id=``
  pins the object id (used by the cluster coordinator, which owns the
  global id space so ids land on their owning shard).
- ``getsig <object_id>`` — the object's signature, base64-encoded in the
  metadata wire format (``repro.metadata.serialization.encode_object``).
  This is how a cluster coordinator fetches a query seed from the shard
  that owns it before scattering the query to the other shards.
- ``querysig <b64> [top=10] [method=filtering] [attr=<expr>]
  [exclude=<id>]`` — similarity search seeded by a base64-encoded
  signature (the scatter half of a cluster query; every backend can
  answer it without holding the seed object).  ``exclude=`` drops one
  object id from the results (the seed itself, on its owning shard).
- ``querysigmany <b64,b64,...> [top=] [method=] [attr=]
  [exclude=id1,id2,...]`` — batch form of ``querysig`` through the
  engine's fused multi-query pipeline; answers one
  ``<query_index> <object_id> <distance>`` line per result.
  ``exclude=`` gives one id per query (a blank entry excludes nothing).
- ``countmod <modulus> <residue>`` — number of indexed objects whose id
  is ``residue (mod modulus)`` (a shard's share of this backend's
  corpus; lets the coordinator count the cluster without double-counting
  replicas).
- ``maxid`` — the id the next auto-assigned insert would take
  (coordinators seed their global id counter from the max across
  backends).
- ``queryfile <path> [top=10] [method=filtering] [attr=<expr>]`` —
  similarity search seeded by an external file (extracted through the
  plug-in, not inserted).
- ``attrs <object_id>`` — dump an object's attributes.
- ``setparam <name> <value>`` — adjust filter parameters live
  (``num_query_segments``, ``candidates_per_segment``,
  ``threshold_fraction``, ``threshold_fn`` by registered name,
  ``parallel on|off`` for the sharded multi-core scan,
  ``trace on|off`` for per-query stage tracing, ``metrics on|off`` for
  the registry master switch, ``profile on|off`` for the sampling
  profiler, ``slow_query_ms <ms>`` for the slow-query log threshold,
  and ``rank_cascade`` / ``rank_centroid_bound`` / ``rank_rowcol_bound``
  / ``rank_dedup`` ``on|off`` for the batched ranking cascade's
  lower-bound pruning — see docs/PERFORMANCE.md, "Ranking cascade").
- ``health`` — server health report: overall status, uptime, and
  per-component degradation details (see docs/ROBUSTNESS.md).
- ``metrics [-p|-s] [prefix]`` — dump the process metrics registry
  (worker deltas folded in first) in its stable ``name value`` line
  format, with ``-p`` in the Prometheus text exposition format, or with
  ``-s`` as one line of JSON snapshot (the federation wire format the
  cluster coordinator pulls; see docs/OBSERVABILITY.md).
- ``trace [--tree]`` — the last query's stage breakdown (needs
  ``setparam trace on`` or a propagated ``trace=`` context), flat or as
  an indented span tree; ``trace get <id> [--tree]`` fetches a stored
  trace by id; ``trace slow [n] [--tree]`` lists the most recent
  slow-query log entries.
- ``events [n]`` — the most recent entries of the process event
  journal (``<seq> <unix_ts> <kind> k=v ...``).
- ``profile [n]`` — sampling-profiler stats plus the top ``n``
  collapsed stacks.

Any command may carry a ``trace=<id>:<sampled>:<hop>`` keyword (see
:mod:`repro.observability.context`): the processor activates the trace
context for the duration of the command and appends one extra reply
line ``TRACE <id> <payload>`` carrying the command's span tree, so a
cluster coordinator collects per-node subtrees in the same round trip.

Graceful degradation: storage failures answer ``ERR DEGRADED <reason>``
(a structured error clients can tell apart from bad requests), and an
LSH-index failure on a query falls back to the exhaustive filtering
path instead of failing the command.
"""

from __future__ import annotations

import base64
import binascii
import time
from struct import error as struct_error
from typing import Dict, List, Optional

from ..attrsearch.index import InvertedIndex, MemoryIndex
from ..attrsearch.query import AttributeSearcher, QueryError
from ..core.engine import LSHIndexError, SearchMethod, SimilaritySearchEngine
from ..core.filtering import FilterParams, get_threshold_fn
from ..metadata.serialization import decode_object, encode_object
from ..observability import context as _trace_context
from ..observability import metrics as _metrics
from ..observability.events import get_event_log
from ..storage.errors import StorageError
from ..system import HealthState
from .protocol import Command, DegradedError, ProtocolError, quote

__all__ = ["CommandProcessor"]

_M_COMMANDS = _metrics.counter("server.commands")
_M_COMMAND_SECONDS = _metrics.histogram("server.command_seconds")
_M_COMMAND_ERRORS = _metrics.counter("server.command_errors")
_M_DEGRADED = _metrics.counter("server.degraded_responses")


class CommandProcessor:
    """Stateful command dispatcher around one engine."""

    def __init__(
        self,
        engine: SimilaritySearchEngine,
        index: Optional[InvertedIndex] = None,
        attributes: Optional[Dict[int, Dict[str, str]]] = None,
        health: Optional[HealthState] = None,
    ) -> None:
        self.engine = engine
        self.index = index if index is not None else MemoryIndex()
        self.searcher = AttributeSearcher(self.index)
        self.attributes: Dict[int, Dict[str, str]] = dict(attributes or {})
        self.health = health if health is not None else HealthState()
        # A pool failure mid-query degrades throughput, not correctness
        # (the engine re-answers serially); surface it in `health` the
        # same way an LSH-index fallback is.
        self.engine.on_parallel_fallback = lambda reason: (
            self.health.record_fallback("parallel_scan", reason)
        )
        # Traces collected under propagated contexts, fetchable by id
        # (`trace get <id>`) after the piggybacked reply line is gone.
        self.trace_store = _trace_context.TraceStore()

    # -- attribute bookkeeping ------------------------------------------
    def register_attributes(self, object_id: int, attrs: Dict[str, str]) -> None:
        if attrs:
            self.attributes[object_id] = dict(attrs)
            self.index.add(object_id, attrs)

    # -- dispatch ---------------------------------------------------------
    def execute(self, command: Command) -> List[str]:
        """Run a command; returns response data lines or raises.

        Storage failures are recorded in :attr:`health` and re-raised as
        :class:`DegradedError` so the wire response is
        ``ERR DEGRADED <reason>`` rather than a generic error: the
        request was fine, the server is impaired.
        """
        handler = getattr(self, f"_cmd_{command.name}", None)
        if handler is None:
            _M_COMMAND_ERRORS.inc()
            raise ProtocolError(f"unknown command {command.name!r}")
        context = self._trace_context_from(command)
        started = time.perf_counter()
        if context is not None:
            _trace_context.activate(context)
        collected: List[object] = []
        try:
            result = handler(command)
        except StorageError as exc:
            _M_COMMAND_ERRORS.inc()
            _M_DEGRADED.inc()
            self.health.record_error("storage", exc)
            raise DegradedError(f"storage: {exc}") from exc
        except Exception:
            _M_COMMAND_ERRORS.inc()
            raise
        finally:
            if context is not None:
                collected = _trace_context.deactivate()
        elapsed = time.perf_counter() - started
        _M_COMMANDS.inc()
        _M_COMMAND_SECONDS.observe(elapsed)
        _metrics.counter(f"server.command.{command.name}").inc()
        if context is not None and context.sampled:
            result = result + [
                self._piggyback_trace(command, context, collected, elapsed)
            ]
        return result

    # -- trace propagation ------------------------------------------------
    @staticmethod
    def _trace_context_from(command: Command):
        token = command.get("trace")
        if token is None:
            return None
        try:
            return _trace_context.TraceContext.parse(token)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc

    def _piggyback_trace(
        self,
        command: Command,
        context: "_trace_context.TraceContext",
        collected: List[object],
        elapsed: float,
    ) -> str:
        """Build this command's span tree, store it, and render the
        extra ``TRACE <id> <payload>`` reply line.

        Query commands contribute the engine's full
        :class:`~repro.observability.tracing.QueryTrace`; commands that
        never reach the tracer (``insertfile``, ``ping``, ...) still get
        a minimal tree with the command's total time, so every traced
        hop is accounted for.
        """
        if collected:
            tree = collected[-1].to_dict()  # type: ignore[attr-defined]
        else:
            tree = {
                "method": command.name,
                "queries": 1,
                "total_seconds": elapsed,
                "stages": {},
                "counts": {},
                "notes": {},
                "spans": [],
            }
        tree["trace_id"] = context.trace_id
        tree.setdefault("notes", {})["hop"] = str(context.hop)
        self.trace_store.put(context.trace_id, tree)
        payload = _trace_context.encode_trace(tree)
        return f"{_trace_context.TRACE_LINE_PREFIX}{context.trace_id} {payload}"

    # -- degraded-mode query fallback -------------------------------------
    def _run_query(self, method: SearchMethod, run):
        """Run ``run(method)``; on LSH-index failure retry via filtering.

        The LSH index is an in-memory acceleration structure — losing it
        degrades speed, not correctness — so a failure *in the LSH path*
        (the engine raises :class:`LSHIndexError` for exactly that site)
        answers the query through the exhaustive filtering pipeline and
        records the fallback.  Any other exception propagates: a bug
        elsewhere in the query pipeline must surface, not be masked by a
        silent re-run.
        """
        if method is not SearchMethod.LSH:
            return run(method)
        try:
            return run(method)
        except LSHIndexError as exc:
            self.health.record_fallback(
                "lsh_index", f"{type(exc).__name__}: {exc}"
            )
            return run(SearchMethod.FILTERING)

    # -- handlers ----------------------------------------------------------
    def _cmd_ping(self, command: Command) -> List[str]:
        return ["pong"]

    def _cmd_health(self, command: Command) -> List[str]:
        return self.health.status_lines()

    def _cmd_count(self, command: Command) -> List[str]:
        return [str(len(self.engine))]

    def _query_latency_lines(self) -> List[str]:
        """p50/p95/p99 query latency (ms) from the engine.query_seconds
        histogram — bucket-interpolated estimates, ``nan`` before the
        first query (see docs/OBSERVABILITY.md §1 for the caveat)."""
        hist = _metrics.get_registry().get("engine.query_seconds")
        lines = []
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            value = hist.quantile(q) if hist is not None else float("nan")
            lines.append(f"query_{label}_ms {value * 1000.0:.3f}")
        return lines

    def _rank_counter(self, name: str) -> int:
        metric = _metrics.get_registry().get(name)
        return int(metric.value) if metric is not None else 0

    def _rank_prune_rate(self) -> float:
        gauge = _metrics.get_registry().get("rank.prune_rate")
        return float(gauge.value) if gauge is not None else 0.0

    def _cmd_stat(self, command: Command) -> List[str]:
        self.engine.collect_worker_metrics()
        stats = self.engine.stats()
        par = self.engine.parallel_info()
        cache = par["cache"]
        tracer = self.engine.tracer
        arena = self.engine.compaction_info()
        return [
            f"objects {stats.num_objects}",
            f"segments {stats.num_segments}",
            f"feature_bits_per_vector {stats.feature_bits_per_vector}",
            f"sketch_bits_per_vector {stats.sketch_bits_per_vector}",
            f"feature_bytes {stats.feature_bytes}",
            f"sketch_bytes {stats.sketch_bytes}",
            f"compression_ratio {stats.compression_ratio:.2f}",
            f"parallel_enabled {'yes' if par['enabled'] else 'no'}",
            f"parallel_active {'yes' if par['active'] else 'no'}",
            f"parallel_backend {par['backend']}",
            f"parallel_backend_active {par['backend_active']}",
            f"parallel_workers {par['workers']}",
            f"parallel_dispatch_round_trips "
            f"{self._rank_counter('parallel.dispatch_round_trips')}",
            f"arena_chunks {arena['chunks']}",
            f"arena_rows {arena['rows']}",
            f"arena_dead_rows {arena['dead_rows']}",
            f"arena_appends {self._rank_counter('arena.appends')}",
            f"arena_compactions {self._rank_counter('arena.compactions')}",
            f"arena_delta_loads {self._rank_counter('arena.delta_loads')}",
            f"compaction {'on' if arena['background'] else 'off'}",
            f"cache_entries {cache['entries']}/{cache['capacity']}",
            f"cache_hits {cache['hits']}",
            f"cache_misses {cache['misses']}",
            f"cache_evictions {cache['evictions']}",
            f"cache_invalidations {cache['invalidations']}",
            f"rank_cascade {'on' if self.engine.rank_params.cascade else 'off'}",
            f"rank_prune_rate {self._rank_prune_rate():.4f}",
            f"rank_exact_evals {self._rank_counter('rank.exact_evals')}",
            f"rank_lower_bound_prunes "
            f"{self._rank_counter('rank.lower_bound_prunes')}",
            f"metrics {'on' if _metrics.get_registry().enabled else 'off'}",
            f"trace {'on' if tracer.enabled else 'off'}",
            f"slow_queries {tracer.slow_log.total_recorded}",
            f"slow_query_ms {tracer.slow_log.threshold_seconds * 1000.0:g}",
        ] + self._query_latency_lines()

    def _cmd_metrics(self, command: Command) -> List[str]:
        """``metrics [-p|-s] [prefix]``: registry dump, optionally
        filtered to one name prefix, rendered in Prometheus text format
        (``-p``), or as one line of JSON snapshot (``-s`` — the
        federation wire format; see docs/OBSERVABILITY.md).

        Pulls pending worker deltas first so the dump includes the
        ``worker.<i>.*`` / ``workers.*`` series of the scan pool.
        """
        prometheus = False
        snapshot = False
        prefix: Optional[str] = None
        for arg in command.args:
            if arg == "-p":
                prometheus = True
            elif arg == "-s":
                snapshot = True
            elif prefix is None:
                prefix = arg
            else:
                raise ProtocolError("usage: metrics [-p|-s] [prefix]")
        if prometheus and snapshot:
            raise ProtocolError("usage: metrics [-p|-s] [prefix]")
        self.engine.collect_worker_metrics()
        registry = _metrics.get_registry()
        if snapshot:
            state = registry.snapshot()
            if prefix:
                state = {
                    name: value
                    for name, value in state.items()
                    if name.startswith(prefix)
                }
            return [_metrics.encode_snapshot(state)]
        if prometheus:
            return registry.render_prometheus(prefix=prefix)
        return registry.render(prefix=prefix)

    def _cmd_profile(self, command: Command) -> List[str]:
        """``profile [n]``: sampling-profiler state plus the top ``n``
        collapsed stacks (``frame;frame;frame count``, FlameGraph's
        folded format).  Stacks come from continuous sampling
        (``setparam profile on``) and from the automatic one-shot
        capture of every slow query."""
        limit = 20
        if command.args:
            try:
                limit = int(command.args[0])
            except ValueError:
                raise ProtocolError("usage: profile [n]") from None
            if limit <= 0:
                raise ProtocolError("usage: profile [n]")
        if len(command.args) > 1:
            raise ProtocolError("usage: profile [n]")
        profiler = self.engine.tracer.profiler
        stats = profiler.stats()
        lines = [
            f"running {'yes' if stats['running'] else 'no'}",
            f"samples {stats['samples']}",
            f"unique_stacks {stats['unique_stacks']}",
            f"slow_captures {stats['slow_captures']}",
            f"dropped {stats['dropped']}",
        ]
        return lines + profiler.collapsed(limit=limit)

    def _cmd_trace(self, command: Command) -> List[str]:
        tracer = self.engine.tracer
        args = list(command.args)
        tree = "--tree" in args
        if tree:
            args.remove("--tree")
        if args and args[0] == "slow":
            try:
                limit = int(args[1]) if len(args) > 1 else 10
            except ValueError:
                raise ProtocolError("usage: trace slow [n] [--tree]") from None
            if limit <= 0 or len(args) > 2:
                raise ProtocolError("usage: trace slow [n] [--tree]")
            lines = [f"slow_queries_total {tracer.slow_log.total_recorded}"]
            for i, entry in enumerate(tracer.slow_log.entries()[-limit:]):
                if tree:
                    lines.extend(_trace_context.render_trace_tree(entry.to_dict()))
                else:
                    lines.append(
                        f"{i} method={entry.method} queries={entry.num_queries} "
                        f"total_seconds={entry.total_seconds:.6f}"
                    )
            return lines
        if args and args[0] == "get":
            if len(args) != 2:
                raise ProtocolError("usage: trace get <id> [--tree]")
            stored = self.trace_store.get(args[1])
            if stored is None:
                raise ProtocolError(f"unknown trace id {args[1]!r}")
            if tree:
                return _trace_context.render_trace_tree(stored)
            return _trace_context.trace_lines(stored)
        if args:
            raise ProtocolError("usage: trace [get <id>|slow [n]] [--tree]")
        last = tracer.last
        if last is None:
            return [
                f"tracing {'on' if tracer.enabled else 'off'}",
                "no_trace_recorded",
            ]
        if tree:
            return _trace_context.render_trace_tree(last.to_dict())
        return last.lines()

    def _cmd_events(self, command: Command) -> List[str]:
        """``events [n]``: the most recent entries of the process event
        journal, oldest first (see docs/OBSERVABILITY.md, "Event
        journal")."""
        limit: Optional[int] = None
        if command.args:
            try:
                limit = int(command.args[0])
            except ValueError:
                raise ProtocolError("usage: events [n]") from None
            if limit < 0 or len(command.args) > 1:
                raise ProtocolError("usage: events [n]")
        journal = get_event_log()
        lines = [f"events_total {journal.total_recorded}"]
        lines.extend(event.line() for event in journal.tail(limit))
        return lines

    def _cmd_query(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError("usage: query <object_id> [top=] [method=] [attr=]")
        try:
            object_id = int(command.args[0])
        except ValueError:
            raise ProtocolError(f"bad object id {command.args[0]!r}") from None
        if object_id not in self.engine:
            raise ProtocolError(f"unknown object {object_id}")
        top_k = int(command.get("top", "10"))
        method = SearchMethod.parse(command.get("method", "filtering"))
        restrict = None
        attr_expr = command.get("attr")
        if attr_expr:
            try:
                restrict = sorted(self.searcher.search(attr_expr))
            except QueryError as exc:
                raise ProtocolError(f"bad attribute query: {exc}") from exc
        weights_arg = command.get("weights")
        if weights_arg:
            from ..core.types import ObjectSignature

            try:
                weights = [float(w) for w in weights_arg.split(",") if w != ""]
            except ValueError:
                raise ProtocolError(f"bad weights {weights_arg!r}") from None
            seed = self.engine.get_object(object_id)
            if len(weights) != seed.num_segments:
                raise ProtocolError(
                    f"object {object_id} has {seed.num_segments} segments, "
                    f"got {len(weights)} weights"
                )
            try:
                query = ObjectSignature(
                    seed.features, weights, object_id=object_id
                )
            except ValueError as exc:
                raise ProtocolError(f"bad weights: {exc}") from exc
            results = self._run_query(
                method,
                lambda m: self.engine.query(
                    query,
                    top_k=top_k,
                    method=m,
                    exclude_self=command.get("self", "no") != "yes",
                    restrict_to=restrict,
                ),
            )
        else:
            results = self._run_query(
                method,
                lambda m: self.engine.query_by_id(
                    object_id,
                    top_k=top_k,
                    method=m,
                    exclude_self=command.get("self", "no") != "yes",
                    restrict_to=restrict,
                ),
            )
        return [f"{r.object_id} {r.distance:.6f}" for r in results]

    def _cmd_querymany(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError(
                "usage: querymany <id1,id2,...> [top=] [method=] [attr=]"
            )
        try:
            object_ids = [int(t) for t in command.args[0].split(",") if t != ""]
        except ValueError:
            raise ProtocolError(f"bad object ids {command.args[0]!r}") from None
        if not object_ids:
            raise ProtocolError("querymany needs at least one object id")
        for object_id in object_ids:
            if object_id not in self.engine:
                raise ProtocolError(f"unknown object {object_id}")
        top_k = int(command.get("top", "10"))
        method = SearchMethod.parse(command.get("method", "filtering"))
        restrict = None
        attr_expr = command.get("attr")
        if attr_expr:
            try:
                restrict = sorted(self.searcher.search(attr_expr))
            except QueryError as exc:
                raise ProtocolError(f"bad attribute query: {exc}") from exc
        batches = self._run_query(
            method,
            lambda m: self.engine.query_many(
                [self.engine.get_object(object_id) for object_id in object_ids],
                top_k=top_k,
                method=m,
                exclude_self=command.get("self", "no") != "yes",
                restrict_to=restrict,
            ),
        )
        return [
            f"{query_id} {r.object_id} {r.distance:.6f}"
            for query_id, results in zip(object_ids, batches)
            for r in results
        ]

    # -- cluster scatter/gather support ---------------------------------
    def _restrict_from(self, command: Command) -> Optional[List[int]]:
        """Candidate restriction from ``attr=`` and/or ``mod=/residue=``.

        ``mod=S residue=s`` restricts to objects of shard ``s`` under
        id-mod-``S`` sharding: a backend hosting several shards must
        answer a per-shard scatter with *only* that shard's objects, or
        the coordinator's merge would double-count objects that other
        replicas also answered (the shards are disjoint; the backends'
        holdings are not).
        """
        restrict: Optional[set] = None
        attr_expr = command.get("attr")
        if attr_expr:
            try:
                restrict = set(self.searcher.search(attr_expr))
            except QueryError as exc:
                raise ProtocolError(f"bad attribute query: {exc}") from exc
        mod = command.get("mod")
        if mod is not None:
            try:
                modulus = int(mod)
                residue = int(command.get("residue", "0"))
            except ValueError:
                raise ProtocolError(
                    f"bad mod/residue {mod!r}/{command.get('residue')!r}"
                ) from None
            if modulus < 1 or not 0 <= residue < modulus:
                raise ProtocolError(f"bad shard restriction mod={modulus} residue={residue}")
            owned = {
                oid for oid in self.engine.objects if oid % modulus == residue
            }
            restrict = owned if restrict is None else restrict & owned
        return sorted(restrict) if restrict is not None else None

    @staticmethod
    def _decode_signature(b64: str, exclude: Optional[int]):
        try:
            raw = base64.b64decode(b64.encode("ascii"), validate=True)
        except (binascii.Error, UnicodeEncodeError) as exc:
            raise ProtocolError(f"bad base64 signature: {exc}") from exc
        try:
            return decode_object(raw, object_id=exclude)
        except (ValueError, struct_error) as exc:
            raise ProtocolError(f"bad signature payload: {exc}") from exc

    def _cmd_getsig(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError("usage: getsig <object_id>")
        try:
            object_id = int(command.args[0])
        except ValueError:
            raise ProtocolError(f"bad object id {command.args[0]!r}") from None
        if object_id not in self.engine:
            raise ProtocolError(f"unknown object {object_id}")
        raw = encode_object(self.engine.get_object(object_id))
        return [base64.b64encode(raw).decode("ascii")]

    def _cmd_querysig(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError(
                "usage: querysig <b64sig> [top=] [method=] [attr=] [exclude=]"
            )
        exclude = command.get("exclude")
        try:
            exclude_id = int(exclude) if exclude is not None else None
        except ValueError:
            raise ProtocolError(f"bad exclude id {exclude!r}") from None
        signature = self._decode_signature(command.args[0], exclude_id)
        top_k = int(command.get("top", "10"))
        method = SearchMethod.parse(command.get("method", "filtering"))
        restrict = self._restrict_from(command)
        results = self._run_query(
            method,
            lambda m: self.engine.query(
                signature,
                top_k=top_k,
                method=m,
                exclude_self=exclude_id is not None,
                restrict_to=restrict,
            ),
        )
        return [f"{r.object_id} {r.distance:.6f}" for r in results]

    def _cmd_querysigmany(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError(
                "usage: querysigmany <b64,b64,...> [top=] [method=] [attr=] "
                "[exclude=id1,id2,...]"
            )
        blobs = [b for b in command.args[0].split(",") if b != ""]
        if not blobs:
            raise ProtocolError("querysigmany needs at least one signature")
        exclude = command.get("exclude")
        excludes: List[Optional[int]] = [None] * len(blobs)
        if exclude is not None:
            parts = exclude.split(",")
            if len(parts) != len(blobs):
                raise ProtocolError(
                    f"exclude= lists {len(parts)} ids for {len(blobs)} queries"
                )
            try:
                excludes = [int(p) if p != "" else None for p in parts]
            except ValueError:
                raise ProtocolError(f"bad exclude ids {exclude!r}") from None
        signatures = [
            self._decode_signature(blob, excl)
            for blob, excl in zip(blobs, excludes)
        ]
        top_k = int(command.get("top", "10"))
        method = SearchMethod.parse(command.get("method", "filtering"))
        restrict = self._restrict_from(command)
        # exclude_self applies per-query via each signature's object_id;
        # queries without an exclude id carry object_id=None, which the
        # ranking path never matches.
        batches = self._run_query(
            method,
            lambda m: self.engine.query_many(
                signatures,
                top_k=top_k,
                method=m,
                exclude_self=True,
                restrict_to=restrict,
            ),
        )
        return [
            f"{index} {r.object_id} {r.distance:.6f}"
            for index, results in enumerate(batches)
            for r in results
        ]

    def _cmd_countmod(self, command: Command) -> List[str]:
        if len(command.args) != 2:
            raise ProtocolError("usage: countmod <modulus> <residue>")
        try:
            modulus, residue = int(command.args[0]), int(command.args[1])
        except ValueError:
            raise ProtocolError("usage: countmod <modulus> <residue>") from None
        if modulus < 1 or not 0 <= residue < modulus:
            raise ProtocolError("need modulus >= 1 and 0 <= residue < modulus")
        count = sum(
            1 for oid in self.engine.objects if oid % modulus == residue
        )
        return [str(count)]

    def _cmd_maxid(self, command: Command) -> List[str]:
        return [str(self.engine.next_id)]

    def _cmd_attrquery(self, command: Command) -> List[str]:
        if not command.args:
            raise ProtocolError("usage: attrquery <expression>")
        expression = " ".join(command.args)
        try:
            ids = sorted(self.searcher.search(expression))
        except QueryError as exc:
            raise ProtocolError(f"bad attribute query: {exc}") from exc
        return [str(i) for i in ids]

    def _cmd_insertfile(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError(
                "usage: insertfile <path> [id=<object_id>] [attr.key=value ...]"
            )
        attrs = {
            key[len("attr."):]: value
            for key, value in command.kwargs
            if key.startswith("attr.")
        }
        pinned = command.get("id")
        try:
            pinned_id = int(pinned) if pinned is not None else None
        except ValueError:
            raise ProtocolError(f"bad object id {pinned!r}") from None
        try:
            object_id = self.engine.insert_file(
                command.args[0], attributes=attrs, object_id=pinned_id
            )
        except KeyError as exc:
            raise ProtocolError(f"insert failed: {exc.args[0]}") from exc
        except (OSError, NotImplementedError, ValueError) as exc:
            raise ProtocolError(f"insert failed: {exc}") from exc
        self.register_attributes(object_id, attrs)
        return [str(object_id)]

    def _cmd_queryfile(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError("usage: queryfile <path> [top=] [method=] [attr=]")
        top_k = int(command.get("top", "10"))
        method = SearchMethod.parse(command.get("method", "filtering"))
        restrict = None
        attr_expr = command.get("attr")
        if attr_expr:
            try:
                restrict = sorted(self.searcher.search(attr_expr))
            except QueryError as exc:
                raise ProtocolError(f"bad attribute query: {exc}") from exc
        try:
            results = self._run_query(
                method,
                lambda m: self.engine.query_file(
                    command.args[0], top_k=top_k, method=m, restrict_to=restrict
                ),
            )
        except (OSError, NotImplementedError, ValueError) as exc:
            raise ProtocolError(f"query failed: {exc}") from exc
        return [f"{r.object_id} {r.distance:.6f}" for r in results]

    def _cmd_attrs(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError("usage: attrs <object_id>")
        object_id = int(command.args[0])
        attrs = self.attributes.get(object_id, {})
        return [f"{quote(k)}={quote(v)}" for k, v in sorted(attrs.items())]

    def _cmd_setparam(self, command: Command) -> List[str]:
        # `setparam parallel backend=thread`: the backend=... token
        # parses as a keyword argument, not a positional, so handle it
        # before the positional arity check.
        if (
            command.args == ["parallel"]
            and command.get("backend") is not None
        ):
            backend = command.get("backend").lower()
            try:
                self.engine.set_parallel_backend(backend)
            except ValueError as exc:
                raise ProtocolError(str(exc)) from exc
            return [f"parallel_backend={backend}"]
        if len(command.args) != 2:
            raise ProtocolError("usage: setparam <name> <value>")
        name, raw = command.args
        params = self.engine.filter_params
        if name == "num_query_segments":
            updated = FilterParams(
                int(raw), params.candidates_per_segment,
                params.threshold_fraction, params.threshold_fn,
            )
        elif name == "candidates_per_segment":
            updated = FilterParams(
                params.num_query_segments, int(raw),
                params.threshold_fraction, params.threshold_fn,
            )
        elif name == "threshold_fraction":
            value = None if raw.lower() == "none" else float(raw)
            updated = FilterParams(
                params.num_query_segments, params.candidates_per_segment,
                value, params.threshold_fn,
            )
        elif name == "threshold_fn":
            try:
                get_threshold_fn(raw)
            except ValueError as exc:
                raise ProtocolError(str(exc)) from exc
            updated = FilterParams(
                params.num_query_segments, params.candidates_per_segment,
                params.threshold_fraction, raw,
            )
        elif name == "parallel":
            flag = raw.lower()
            if flag not in ("on", "off"):
                raise ProtocolError("usage: setparam parallel on|off")
            self.engine.set_parallel_enabled(flag == "on")
            return [f"parallel={flag}"]
        elif name == "compaction":
            flag = raw.lower()
            if flag not in ("on", "off"):
                raise ProtocolError("usage: setparam compaction on|off")
            self.engine.set_compaction(flag == "on")
            return [f"compaction={flag}"]
        elif name == "trace":
            flag = raw.lower()
            if flag not in ("on", "off"):
                raise ProtocolError("usage: setparam trace on|off")
            self.engine.tracer.set_enabled(flag == "on")
            return [f"trace={flag}"]
        elif name == "metrics":
            flag = raw.lower()
            if flag not in ("on", "off"):
                raise ProtocolError("usage: setparam metrics on|off")
            _metrics.set_enabled(flag == "on")
            return [f"metrics={flag}"]
        elif name == "profile":
            flag = raw.lower()
            if flag not in ("on", "off"):
                raise ProtocolError("usage: setparam profile on|off")
            profiler = self.engine.tracer.profiler
            if flag == "on":
                profiler.start()
            else:
                profiler.stop()
            return [f"profile={flag}"]
        elif name in (
            "rank_cascade", "rank_centroid_bound", "rank_rowcol_bound",
            "rank_dedup",
        ):
            flag = raw.lower()
            if flag not in ("on", "off"):
                raise ProtocolError(f"usage: setparam {name} on|off")
            field = {
                "rank_cascade": "cascade",
                "rank_centroid_bound": "centroid_bound",
                "rank_rowcol_bound": "rowcol_bound",
                "rank_dedup": "dedup_segments",
            }[name]
            self.engine.rank_params = self.engine.rank_params.with_updates(
                **{field: flag == "on"}
            )
            return [f"{name}={flag}"]
        elif name == "slow_query_ms":
            try:
                millis = float(raw)
            except ValueError:
                raise ProtocolError(f"bad slow_query_ms {raw!r}") from None
            try:
                self.engine.tracer.set_slow_threshold(millis / 1000.0)
            except ValueError as exc:
                raise ProtocolError(str(exc)) from exc
            return [f"slow_query_ms={raw}"]
        else:
            raise ProtocolError(f"unknown parameter {name!r}")
        self.engine.filter_params = updated
        return [f"{name}={raw}"]
