"""Client library for the command-line query protocol."""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Tuple

from .protocol import quote

__all__ = ["ClientError", "FerretClient"]


class ClientError(RuntimeError):
    """Server returned an ERR response or the connection broke."""


class FerretClient:
    """Blocking client over one TCP connection.

    Usable as a context manager.  All methods raise :class:`ClientError`
    on an ``ERR`` response.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7878, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    # -- raw protocol ----------------------------------------------------
    def send(self, line: str) -> List[str]:
        """Send one command line; returns the response data lines."""
        self._sock.sendall((line.rstrip("\n") + "\n").encode("utf-8"))
        header = self._reader.readline()
        if not header:
            raise ClientError("connection closed by server")
        header = header.rstrip("\n")
        if header.startswith("ERR"):
            raise ClientError(header[4:] or "unknown server error")
        if not header.startswith("OK "):
            raise ClientError(f"malformed response header {header!r}")
        count = int(header[3:])
        return [self._reader.readline().rstrip("\n") for _ in range(count)]

    # -- typed helpers -----------------------------------------------------
    def ping(self) -> bool:
        return self.send("ping") == ["pong"]

    def count(self) -> int:
        return int(self.send("count")[0])

    def stat(self) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for line in self.send("stat"):
            key, _, value = line.partition(" ")
            out[key] = value
        return out

    def query(
        self,
        object_id: int,
        top: int = 10,
        method: str = "filtering",
        attr: Optional[str] = None,
        include_self: bool = False,
    ) -> List[Tuple[int, float]]:
        parts = [f"query {object_id} top={top} method={method}"]
        if attr:
            parts.append(f"attr={quote(attr)}")
        if include_self:
            parts.append("self=yes")
        lines = self.send(" ".join(parts))
        results = []
        for line in lines:
            oid, _, dist = line.partition(" ")
            results.append((int(oid), float(dist)))
        return results

    def attrquery(self, expression: str) -> List[int]:
        return [int(line) for line in self.send(f"attrquery {quote(expression)}")]

    def query_file(
        self,
        path: str,
        top: int = 10,
        method: str = "filtering",
        attr: Optional[str] = None,
    ) -> List[Tuple[int, float]]:
        """Similarity search seeded by a file on the server's filesystem."""
        parts = [f"queryfile {quote(path)} top={top} method={method}"]
        if attr:
            parts.append(f"attr={quote(attr)}")
        results = []
        for line in self.send(" ".join(parts)):
            oid, _, dist = line.partition(" ")
            results.append((int(oid), float(dist)))
        return results

    def insert_file(self, path: str, attributes: Optional[Dict[str, str]] = None) -> int:
        parts = [f"insertfile {quote(path)}"]
        for key, value in (attributes or {}).items():
            parts.append(f"attr.{key}={quote(value)}")
        return int(self.send(" ".join(parts))[0])

    def set_param(self, name: str, value: str) -> None:
        self.send(f"setparam {name} {value}")

    def close(self) -> None:
        try:
            self._sock.sendall(b"quit\n")
        except OSError:
            pass
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "FerretClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
