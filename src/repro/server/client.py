"""Client library for the command-line query protocol.

Beyond the blocking single-connection client the paper's tools need,
:class:`FerretClient` offers an opt-in resilience layer for production
use:

- **Per-command deadlines** — the socket timeout is applied to every
  command round-trip (not just connect), and an expired deadline raises
  :class:`ClientTimeout`, a distinct subclass of :class:`ClientError`,
  so callers can tell a retryable timeout from a protocol error.
- **Automatic reconnect + retry** — with a :class:`RetryPolicy`, broken
  connections and timeouts are retried with exponential backoff and
  deterministic jitter, but only for *idempotent* commands (queries,
  stats, health): an ``insertfile`` is never replayed blindly.  Even
  without a policy, a torn connection (ECONNRESET / BrokenPipeError —
  typically a restarted server or an idle-timeout disconnect) earns one
  free immediate reconnect for idempotent commands, counted in
  ``errors_absorbed.client_reconnect``.
- **Degradation awareness** — an ``ERR DEGRADED <reason>`` response
  (see ``docs/ROBUSTNESS.md``) raises :class:`ServerDegraded`, again
  distinguishable from plain command failures.
- **Multi-endpoint awareness** — constructed with
  ``endpoints=[(host, port), ...]`` the client cycles to the next
  endpoint on reconnect, so a coordinator replica set behind it keeps
  answering while one address is down.
- **Partial-result surfacing** — a coordinator answer whose first data
  line is ``PARTIAL <shards>`` (some shards unreachable; see
  :mod:`repro.cluster`) is stripped, recorded in
  ``last_partial_shards`` and reported as a
  :class:`PartialResultWarning` rather than silently mistaken for a
  complete answer.
"""

from __future__ import annotations

import random
import socket
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..observability import metrics as _metrics
from .protocol import quote

__all__ = [
    "ClientError",
    "ClientTimeout",
    "ConnectionLost",
    "ServerDegraded",
    "PartialResultWarning",
    "RetryPolicy",
    "FerretClient",
    "IDEMPOTENT_COMMANDS",
]

_M_RECONNECTS = _metrics.counter("errors_absorbed.client_reconnect")


class ClientError(RuntimeError):
    """Server returned an ERR response or the connection broke."""


class ClientTimeout(ClientError):
    """A command exceeded its deadline (retryable for idempotent commands)."""


class ConnectionLost(ClientError, ConnectionError):
    """The transport failed: connect refused, reset, or desynchronized.

    Distinct from a plain :class:`ClientError` (a well-formed ``ERR``
    answer over a healthy connection): a :class:`ConnectionLost` means
    no answer arrived at all, so the command *may* be replayed if it is
    idempotent, and cluster routing treats the backend as suspect.
    Subclasses :class:`ConnectionError` too, so pre-existing ``except
    OSError`` connect handling keeps working.
    """


class PartialResultWarning(UserWarning):
    """A cluster answer omitted one or more unreachable shards.

    The results returned are still correct — they are the deterministic
    merge of every *live* shard — but objects owned by the missing
    shards could not be considered.
    """

    def __init__(self, missing_shards: Sequence[int]) -> None:
        self.missing_shards = tuple(missing_shards)
        super().__init__(
            "partial result: shard(s) "
            + ",".join(str(s) for s in self.missing_shards)
            + " unreachable"
        )


class ServerDegraded(ClientError):
    """Server answered ``ERR DEGRADED <reason>``: alive but impaired."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


#: Commands safe to replay after a connection failure: they do not
#: mutate server state (or, for ``setparam``, are absorbing).
IDEMPOTENT_COMMANDS = frozenset(
    {
        "ping",
        "count",
        "stat",
        "health",
        "query",
        "querymany",
        "queryfile",
        "attrquery",
        "attrs",
        "setparam",
        "metrics",
        "trace",
        "profile",
        "getsig",
        "querysig",
        "querysigmany",
        "countmod",
        "maxid",
        "cluster",
        "events",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Delay before attempt ``n`` (0-based, first retry is ``n=1``) is
    ``min(max_delay, base_delay * multiplier**(n-1))`` scaled by a
    jitter factor drawn uniformly from ``[1-jitter, 1+jitter]`` using a
    seeded RNG, so retry storms desynchronize across clients while
    individual runs stay reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    retry_timeouts: bool = True
    seed: int = 0

    def delays(self) -> List[float]:
        rng = random.Random(self.seed)
        delays = []
        for attempt in range(1, self.max_attempts):
            base = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
            delays.append(base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0)))
        return delays


class FerretClient:
    """Blocking client over one TCP connection.

    Usable as a context manager.  All methods raise :class:`ClientError`
    on an ``ERR`` response.  With ``retry`` set, idempotent commands
    survive connection failures and server restarts transparently.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7878,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        endpoints: Optional[Sequence[Tuple[str, int]]] = None,
    ) -> None:
        if endpoints:
            self._endpoints: List[Tuple[str, int]] = list(endpoints)
        else:
            self._endpoints = [(host, port)]
        self._endpoint_index = 0
        self.host, self.port = self._endpoints[0]
        self.timeout = timeout
        self.retry = retry
        self._sock: Optional[socket.socket] = None
        self._reader = None
        #: Shards missing from the most recent cluster answer (empty
        #: tuple when the last answer was complete).
        self.last_partial_shards: Tuple[int, ...] = ()
        self._connect()

    # -- connection management -------------------------------------------
    def _connect(self) -> None:
        """Connect to the current endpoint, cycling through alternates.

        Raises :class:`ConnectionLost` (not a raw ``OSError``) when every
        configured endpoint refuses, so callers see one exception family
        for all transport failures.
        """
        self._teardown()
        last_exc: Optional[OSError] = None
        for offset in range(len(self._endpoints)):
            index = (self._endpoint_index + offset) % len(self._endpoints)
            host, port = self._endpoints[index]
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=self.timeout
                )
            except OSError as exc:
                last_exc = exc
                continue
            self._endpoint_index = index
            self.host, self.port = host, port
            self._reader = self._sock.makefile("r", encoding="utf-8")
            return
        raise ConnectionLost(
            f"connect failed for all {len(self._endpoints)} endpoint(s): {last_exc}"
        ) from last_exc

    def _teardown(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # -- raw protocol ----------------------------------------------------
    def _send_once(self, line: str, deadline: Optional[float]) -> List[str]:
        """One command round-trip on the current connection.

        ``deadline`` is an absolute ``time.monotonic()`` instant; the
        socket timeout is re-armed from it before the send and before
        every response read, so a stalled server cannot hold the caller
        past its budget.  An already-expired deadline raises
        :class:`ClientTimeout` *before* anything is written — sending a
        command whose response will never be read would desynchronize
        the connection for no benefit.  After any mid-flight failure the
        connection is torn down: a half-read response would
        desynchronize the line protocol.
        """
        # The command word is only for error messages; an empty or
        # whitespace-only line must still fail as a timeout/protocol
        # error, not as an IndexError on split()[0].
        tokens = line.split()
        command_word = tokens[0] if tokens else "<empty>"
        if deadline is not None and deadline - time.monotonic() <= 0:
            # Connection (if any) is untouched: nothing was sent.
            raise ClientTimeout(
                f"deadline expired before {command_word!r} was sent"
            )
        if self._sock is None:
            self._connect()  # raises ConnectionLost if every endpoint refuses

        def remaining() -> Optional[float]:
            if deadline is None:
                return self.timeout
            left = deadline - time.monotonic()
            if left <= 0:
                raise ClientTimeout(
                    f"deadline expired before {command_word!r} completed"
                )
            return left

        try:
            self._sock.settimeout(remaining())
            self._sock.sendall((line.rstrip("\n") + "\n").encode("utf-8"))
            self._sock.settimeout(remaining())
            header = self._reader.readline()
            if not header:
                raise ConnectionLost("connection closed by server")
            header = header.rstrip("\n")
            if header.startswith("ERR"):
                message = header[4:] or "unknown server error"
                if message.startswith("DEGRADED"):
                    raise ServerDegraded(message[len("DEGRADED"):].strip() or "degraded")
                raise ClientError(message)
            if not header.startswith("OK "):
                raise ConnectionLost(f"malformed response header {header!r}")
            count = int(header[3:])
            lines = []
            for _ in range(count):
                self._sock.settimeout(remaining())
                lines.append(self._reader.readline().rstrip("\n"))
            return lines
        except socket.timeout as exc:
            # The connection is now desynchronized (a late response may
            # still arrive): drop it so the next command starts clean.
            self._teardown()
            raise ClientTimeout(f"command timed out: {command_word!r}") from exc
        except ClientError as exc:
            # Ordered before OSError: ConnectionLost is both.  A plain
            # ERR answer (and ServerDegraded) is a complete, well-formed
            # response — the connection stays up; everything else is
            # torn down because a half-exchanged response would
            # desynchronize the line protocol.
            if isinstance(exc, (ConnectionLost, ClientTimeout)):
                self._teardown()
            raise
        except (OSError, ValueError) as exc:
            self._teardown()
            raise ConnectionLost(f"connection failed: {exc}") from exc

    def send(self, line: str, timeout: Optional[float] = None) -> List[str]:
        """Send one command line; returns the response data lines.

        ``timeout`` overrides the client-wide per-command timeout for
        this call.  With a :class:`RetryPolicy` configured, idempotent
        commands are retried across reconnects on connection errors and
        (optionally) timeouts; each attempt gets a fresh deadline.
        """
        budget = timeout if timeout is not None else self.timeout
        command = line.strip().split(" ", 1)[0].lower() if line.strip() else ""
        idempotent = command in IDEMPOTENT_COMMANDS
        policy = self.retry
        delays = policy.delays() if (policy is not None and idempotent) else []
        attempt = 0
        # One free immediate reconnect per call: a torn connection
        # (restarted server, idle-timeout disconnect, stale pooled
        # socket) costs exactly one resend for idempotent commands even
        # without a RetryPolicy.  Counted, never silent.
        free_reconnect = idempotent
        while True:
            deadline = time.monotonic() + budget if budget is not None else None
            try:
                return self._send_once(line, deadline)
            except ServerDegraded:
                raise  # the server answered; retrying won't help
            except ClientTimeout:
                if not delays or not policy.retry_timeouts or attempt >= len(delays):
                    raise
            except ConnectionLost:
                if free_reconnect:
                    free_reconnect = False
                    _M_RECONNECTS.inc()
                    continue
                if attempt >= len(delays):
                    raise
            # Plain ClientError (an ERR answer over a live connection)
            # propagates above: it is an answer, not a failure.
            time.sleep(delays[attempt])
            attempt += 1
            # Reconnection happens lazily inside the next _send_once.

    # -- typed helpers -----------------------------------------------------
    def ping(self) -> bool:
        return self.send("ping") == ["pong"]

    def count(self) -> int:
        return int(self.send("count")[0])

    def stat(self) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for line in self.send("stat"):
            key, _, value = line.partition(" ")
            out[key] = value
        return out

    def health(self) -> Dict[str, str]:
        """Server health: status plus per-component degradation details."""
        out: Dict[str, str] = {}
        for line in self.send("health"):
            key, _, value = line.partition(" ")
            out[key] = value
        return out

    def metrics(self, prefix: Optional[str] = None) -> Dict[str, str]:
        """The server's metrics registry as ``{name: value}`` strings.

        ``prefix`` restricts the dump server-side (``metrics parallel.``)
        so clients needn't download the full registry.
        """
        line = "metrics" if prefix is None else f"metrics {quote(prefix)}"
        out: Dict[str, str] = {}
        for response_line in self.send(line):
            key, _, value = response_line.partition(" ")
            out[key] = value
        return out

    def metrics_prometheus(self, prefix: Optional[str] = None) -> str:
        """The registry in Prometheus text exposition format (raw)."""
        line = "metrics -p" if prefix is None else f"metrics -p {quote(prefix)}"
        return "\n".join(self.send(line)) + "\n"

    def profile(self, limit: Optional[int] = None) -> List[str]:
        """Sampling-profiler stats + top collapsed stacks (raw lines)."""
        line = "profile" if limit is None else f"profile {int(limit)}"
        return self.send(line)

    def trace(self) -> Dict[str, str]:
        """The last query's stage breakdown (``setparam trace on`` first)."""
        out: Dict[str, str] = {}
        for line in self.send("trace"):
            key, _, value = line.partition(" ")
            out[key] = value
        return out

    def trace_tree(self, trace_id: Optional[str] = None) -> List[str]:
        """The last (or ``trace_id``'s) trace as a pretty-printed span
        tree (raw ``trace --tree`` / ``trace get <id> --tree`` lines)."""
        if trace_id is None:
            return self.send("trace --tree")
        return self.send(f"trace get {quote(trace_id)} --tree")

    def events(self, limit: Optional[int] = None) -> List[str]:
        """The server's event journal, oldest first (raw ``events``
        lines: ``<seq> <unix_ts> <kind> k=v ...`` after the
        ``events_total`` header)."""
        line = "events" if limit is None else f"events {int(limit)}"
        return self.send(line)

    def traced_query(
        self,
        object_id: int,
        top: int = 10,
        method: str = "filtering",
    ) -> Tuple[List[Tuple[int, float]], Optional[Dict[str, object]]]:
        """A similarity query with a fresh trace context attached.

        Returns ``(results, trace_tree)`` — against a coordinator the
        tree is the stitched cross-node span tree (``node.<shard>.
        <backend>`` subtrees included); against a single server it is
        that engine's trace.  ``trace_tree`` is ``None`` only if the
        server did not piggyback one.
        """
        from ..observability.context import TraceContext, split_trace_line

        ctx = TraceContext.generate()
        lines = self.send(
            f"query {int(object_id)} top={int(top)} method={quote(method)} "
            f"trace={ctx.to_wire()}"
        )
        lines, tree = split_trace_line(lines)
        lines = self._strip_partial(lines)
        results = []
        for line in lines:
            oid, _, dist = line.partition(" ")
            results.append((int(oid), float(dist)))
        return results, tree

    def _strip_partial(self, lines: List[str]) -> List[str]:
        """Record and strip a leading ``PARTIAL <shards>`` tag.

        Coordinator answers prepend ``PARTIAL s1,s2`` when one or more
        shards were unreachable (see :mod:`repro.cluster`); the
        remaining lines are the merged answer over the live shards.
        Updates ``last_partial_shards`` either way and warns with
        :class:`PartialResultWarning` so callers cannot mistake a
        partial answer for a complete one.
        """
        if lines and lines[0].startswith("PARTIAL"):
            tail = lines[0][len("PARTIAL"):].strip()
            self.last_partial_shards = tuple(
                int(s) for s in tail.split(",") if s
            )
            warnings.warn(
                PartialResultWarning(self.last_partial_shards), stacklevel=3
            )
            return lines[1:]
        self.last_partial_shards = ()
        return lines

    def query(
        self,
        object_id: int,
        top: int = 10,
        method: str = "filtering",
        attr: Optional[str] = None,
        include_self: bool = False,
    ) -> List[Tuple[int, float]]:
        parts = [f"query {object_id} top={top} method={method}"]
        if attr:
            parts.append(f"attr={quote(attr)}")
        if include_self:
            parts.append("self=yes")
        lines = self._strip_partial(self.send(" ".join(parts)))
        results = []
        for line in lines:
            oid, _, dist = line.partition(" ")
            results.append((int(oid), float(dist)))
        return results

    def querymany(
        self,
        object_ids: Sequence[int],
        top: int = 10,
        method: str = "filtering",
    ) -> List[List[Tuple[int, float]]]:
        """Batched similarity search: one result list per seed id.

        Response lines are ``<query_index-or-id> <oid> <dist>`` grouped
        by the first field in the order first seen, which both the
        single-server ``querymany`` (keyed by object id) and the
        coordinator (keyed by query index) satisfy.
        """
        ids = " ".join(str(int(i)) for i in object_ids)
        lines = self._strip_partial(
            self.send(f"querymany {ids} top={top} method={method}")
        )
        groups: Dict[str, List[Tuple[int, float]]] = {}
        order: List[str] = []
        for line in lines:
            key, oid, dist = line.split()
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((int(oid), float(dist)))
        return [groups[key] for key in order]

    def cluster_status(self) -> Dict[str, str]:
        """Coordinator topology/health summary (``cluster`` command)."""
        out: Dict[str, str] = {}
        for line in self.send("cluster"):
            key, _, value = line.partition(" ")
            out[key] = value
        return out

    def attrquery(self, expression: str) -> List[int]:
        return [int(line) for line in self.send(f"attrquery {quote(expression)}")]

    def query_file(
        self,
        path: str,
        top: int = 10,
        method: str = "filtering",
        attr: Optional[str] = None,
    ) -> List[Tuple[int, float]]:
        """Similarity search seeded by a file on the server's filesystem."""
        parts = [f"queryfile {quote(path)} top={top} method={method}"]
        if attr:
            parts.append(f"attr={quote(attr)}")
        results = []
        for line in self.send(" ".join(parts)):
            oid, _, dist = line.partition(" ")
            results.append((int(oid), float(dist)))
        return results

    def insert_file(
        self,
        path: str,
        attributes: Optional[Dict[str, str]] = None,
        object_id: Optional[int] = None,
    ) -> int:
        parts = [f"insertfile {quote(path)}"]
        if object_id is not None:
            parts.append(f"id={int(object_id)}")
        for key, value in (attributes or {}).items():
            parts.append(f"attr.{key}={quote(value)}")
        return int(self.send(" ".join(parts))[0])

    def set_param(self, name: str, value: str) -> None:
        self.send(f"setparam {name} {value}")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.sendall(b"quit\n")
            except OSError:
                pass
        self._teardown()

    def __enter__(self) -> "FerretClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
