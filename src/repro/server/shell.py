"""Interactive shell for the command-line query interface.

"The command-line query interface allows users to use scripts to quickly
experiment with different parameters without restarting the server"
(section 4.1.4).  This is the human end of that workflow: a small REPL
that forwards lines to a Ferret server (or an in-process processor) and
pretty-prints responses.  It is also scriptable — pipe a command file to
stdin, or call :func:`run_shell` with an input stream.

Usage::

    python -m repro.server.shell --host 127.0.0.1 --port 7878
    echo "query 3 top=5" | python -m repro.server.shell --port 7878
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional, Sequence

from .client import ClientError, FerretClient

__all__ = ["run_shell", "main"]

_HELP = """\
commands are forwarded to the server verbatim; e.g.:
  ping                             liveness check
  count                            number of indexed objects
  stat                             engine storage statistics
  query <id> [top=] [method=] [attr=]   similarity search
  attrquery <expression>           attribute search (AND/OR/NOT, field>num)
  attrs <id>                       dump an object's attributes
  setparam <name> <value>          tune filter parameters live
  insertfile <path> [attr.k=v]     ingest a file
  metrics [-p|-s] [prefix]         metrics registry dump
  trace [--tree]                   last query's stage breakdown
  trace get <id> [--tree]          a stored (stitched) trace by id
  trace slow [n] [--tree]          slow-query log entries
  events [n]                       event journal (postmortem timeline)
shell-local: help, quit/exit"""


def run_shell(
    backend: "object",
    stdin: IO[str],
    stdout: IO[str],
    prompt: str = "ferret> ",
    interactive: bool = True,
) -> int:
    """Drive the REPL over ``backend`` (anything with ``send(line)``).

    Returns the number of commands that produced an error — scripts can
    use it as an exit code.
    """
    errors = 0
    while True:
        if interactive:
            stdout.write(prompt)
            stdout.flush()
        line = stdin.readline()
        if not line:
            break
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower() in ("quit", "exit"):
            break
        if line.lower() == "help":
            stdout.write(_HELP + "\n")
            continue
        try:
            for row in backend.send(line):
                stdout.write(row + "\n")
        except ClientError as exc:
            errors += 1
            stdout.write(f"error: {exc}\n")
        except (BrokenPipeError, ConnectionError) as exc:
            stdout.write(f"connection lost: {exc}\n")
            return errors + 1
    return errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Ferret interactive shell")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878)
    args = parser.parse_args(argv)
    try:
        client = FerretClient(args.host, args.port)
    except OSError as exc:
        print(f"cannot connect to {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    with client:
        errors = run_shell(
            client, sys.stdin, sys.stdout, interactive=sys.stdin.isatty()
        )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
