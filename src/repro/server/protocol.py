"""Line-oriented command protocol (section 4.1.4).

The command-line query interface lets web clients and scripts drive the
search engine without restarting it.  The wire format is plain text, one
command per line::

    <command> [positional ...] [key=value ...]

Responses::

    OK <n>          followed by n data lines
    ERR <message>

Values containing spaces are double-quoted; quotes inside values are
backslash-escaped.  Keyword arguments may repeat (e.g. several ``attr=``
pairs on insert).
"""

from __future__ import annotations

import re
import shlex
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# Keyword-argument keys must look like identifiers; anything else with an
# '=' (attribute comparisons like "n>=8") stays a positional argument.
_KWARG_KEY_RE = re.compile(r"^[A-Za-z][A-Za-z0-9._-]*$")

__all__ = [
    "Command",
    "ProtocolError",
    "DegradedError",
    "parse_command",
    "format_ok",
    "format_error",
    "quote",
]


class ProtocolError(ValueError):
    """Malformed protocol line."""


class DegradedError(ProtocolError):
    """The command failed because a server component is degraded.

    Serialized as ``ERR DEGRADED <reason>`` — a *structured* error
    clients can distinguish from bad-request failures (the resilient
    client raises :class:`~repro.server.client.ServerDegraded` for it).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"DEGRADED {reason.splitlines()[0] if reason else 'unknown'}")
        self.reason = reason


@dataclass
class Command:
    """A parsed command line."""

    name: str
    args: List[str] = field(default_factory=list)
    kwargs: List[Tuple[str, str]] = field(default_factory=list)

    def kwargs_dict(self) -> Dict[str, str]:
        """Last-wins view of the keyword arguments."""
        return dict(self.kwargs)

    def get(self, key: str, default: str = None) -> str:
        for k, v in reversed(self.kwargs):
            if k == key:
                return v
        return default

    def get_all(self, key: str) -> List[str]:
        return [v for k, v in self.kwargs if k == key]


def parse_command(line: str) -> Command:
    """Parse one protocol line into a :class:`Command`."""
    line = line.strip()
    if not line:
        raise ProtocolError("empty command")
    try:
        tokens = shlex.split(line)
    except ValueError as exc:
        raise ProtocolError(f"bad quoting: {exc}") from exc
    name = tokens[0].lower()
    command = Command(name)
    for token in tokens[1:]:
        if "=" in token:
            key, _, value = token.partition("=")
            # Only identifier-shaped keys become keyword arguments; other
            # '='-bearing tokens (e.g. the attribute comparison "n>=8")
            # stay positional.
            if _KWARG_KEY_RE.match(key):
                command.kwargs.append((key.lower(), value))
                continue
            if not key:
                raise ProtocolError(f"empty key in {token!r}")
        command.args.append(token)
    return command


def quote(value: str) -> str:
    """Quote a value for inclusion in a protocol line if needed.

    Quotes whenever the value contains shell-significant characters or
    anything non-printable: ``str.strip`` treats several control
    characters (\x1c-\x1f) as whitespace even though ``shlex`` does
    not, so bare non-printables would be eaten at the line level.
    """
    if value and value.isprintable() and all(c not in value for c in " \"'\\"):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def format_ok(lines: List[str]) -> str:
    """Serialize a success response (header + data lines)."""
    return "\n".join([f"OK {len(lines)}"] + lines) + "\n"


def format_error(message: str) -> str:
    return f"ERR {message.splitlines()[0] if message else 'unknown error'}\n"
