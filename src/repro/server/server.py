"""TCP server exposing the command-line query interface.

"The core components and the data-type specific algorithm
implementations are linked into a single, concurrent program, while the
data acquisition and user interface modules interact with the search
engine either through the function-call level API or remotely via a
simple network protocol" (section 3).  This is that network endpoint: a
threading TCP server speaking the line protocol of
:mod:`repro.server.protocol`.
"""

from __future__ import annotations

import argparse
import socketserver
import threading
from typing import Optional, Sequence

from .commands import CommandProcessor
from .protocol import ProtocolError, format_error, format_ok, parse_command

__all__ = ["FerretServer", "serve_background", "main"]


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        processor: CommandProcessor = self.server.processor  # type: ignore[attr-defined]
        while True:
            raw = self.rfile.readline()
            if not raw:
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            if line.lower() in ("quit", "exit"):
                self.wfile.write(format_ok(["bye"]).encode("utf-8"))
                return
            try:
                command = parse_command(line)
                data = processor.execute(command)
                response = format_ok(data)
            except ProtocolError as exc:
                response = format_error(str(exc))
            except Exception as exc:  # surface engine errors to the client
                response = format_error(f"{type(exc).__name__}: {exc}")
            self.wfile.write(response.encode("utf-8"))


class FerretServer(socketserver.ThreadingTCPServer):
    """Threaded query server bound to ``(host, port)``.

    ``port=0`` picks an ephemeral port; read ``server_address`` after
    construction.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, processor: CommandProcessor, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _Handler)
        self.processor = processor


def serve_background(processor: CommandProcessor, host: str = "127.0.0.1", port: int = 0) -> FerretServer:
    """Start a server on a daemon thread; returns the bound server."""
    server = FerretServer(processor, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: serve a synthetic demo engine."""
    parser = argparse.ArgumentParser(description="Ferret similarity search server")
    parser.add_argument("--datatype", default="image")
    parser.add_argument("--size", type=int, default=150)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878)
    args = parser.parse_args(argv)

    from ..datatypes import build_demo_engine

    engine, _bench = build_demo_engine(args.datatype, size=args.size)
    processor = CommandProcessor(engine)
    server = FerretServer(processor, args.host, args.port)
    host, port = server.server_address
    print(f"ferret-server: {args.datatype} engine with {len(engine)} objects on {host}:{port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
