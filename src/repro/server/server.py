"""TCP server exposing the command-line query interface.

"The core components and the data-type specific algorithm
implementations are linked into a single, concurrent program, while the
data acquisition and user interface modules interact with the search
engine either through the function-call level API or remotely via a
simple network protocol" (section 3).  This is that network endpoint: a
threading TCP server speaking the line protocol of
:mod:`repro.server.protocol`.
"""

from __future__ import annotations

import argparse
import errno
import socket
import socketserver
import threading
import time
from typing import Optional, Sequence

from ..observability import metrics as _metrics
from ..observability.log import get_logger, set_quiet
from .commands import CommandProcessor
from .protocol import ProtocolError, format_error, format_ok, parse_command

__all__ = ["FerretServer", "serve_background", "main", "MAX_LINE_BYTES"]

_LOG = get_logger("server")
_M_UNHANDLED = _metrics.counter("server.unhandled_errors")
_M_ACCEPT_OVERLOAD = _metrics.counter("errors_absorbed.server.accept_overload")
_M_IDLE_DISCONNECTS = _metrics.counter("server.idle_disconnects")

#: Upper bound on one request line.  A client that streams an unbounded
#: "line" would otherwise grow the server-side buffer without limit; at
#: the cap the server answers ERR, drains nothing, and closes.
MAX_LINE_BYTES = 1 << 20

#: ``accept()`` errnos that mean resource exhaustion, not a dead socket:
#: out of fds (per-process or system-wide) or transient kernel memory
#: pressure.  Backing off briefly sheds load; crashing the accept loop
#: would turn "too many clients" into "no clients".
_OVERLOAD_ERRNOS = frozenset(
    getattr(errno, name)
    for name in ("EMFILE", "ENFILE", "ENOBUFS", "ENOMEM")
    if hasattr(errno, name)
)


class _Handler(socketserver.StreamRequestHandler):
    def _reply(self, response: str) -> bool:
        """Write a response; False if the client went away mid-write.

        A client disconnecting between request and response is routine
        (timeouts, Ctrl-C) and must not unwind into the server loop —
        the broken pipe only affects this connection.
        """
        try:
            self.wfile.write(response.encode("utf-8"))
            return True
        except OSError:
            return False

    def handle(self) -> None:
        processor: CommandProcessor = self.server.processor  # type: ignore[attr-defined]
        idle_timeout = self.server.idle_timeout  # type: ignore[attr-defined]
        if idle_timeout is not None:
            # Per-connection idle cap: a client that connects and then
            # holds the fd without speaking would otherwise pin a
            # handler thread and a file descriptor forever — exactly the
            # exhaustion the accept-loop guard below then has to absorb.
            self.connection.settimeout(idle_timeout)
        while True:
            try:
                raw = self.rfile.readline(MAX_LINE_BYTES + 1)
            except socket.timeout:
                _M_IDLE_DISCONNECTS.inc()
                self._reply(format_error(f"idle for {self.server.idle_timeout:.0f}s, closing"))
                return
            except OSError:
                return
            if not raw:
                return
            if len(raw) > MAX_LINE_BYTES:
                # Oversized request: the rest of the "line" is still in
                # flight, so the stream is unrecoverable — answer and close.
                self._reply(format_error(f"request line exceeds {MAX_LINE_BYTES} bytes"))
                # Bounded drain toward the newline: closing with unread
                # data pending would RST the connection and can discard
                # the ERR response before the client reads it.
                drained = 0
                try:
                    while drained <= MAX_LINE_BYTES:
                        tail = self.rfile.readline(65536)
                        drained += len(tail)
                        if not tail or tail.endswith(b"\n"):
                            break
                except OSError:
                    pass
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            if line.lower() in ("quit", "exit"):
                self._reply(format_ok(["bye"]))
                return
            try:
                command = parse_command(line)
                data = processor.execute(command)
                response = format_ok(data)
            except ProtocolError as exc:
                response = format_error(str(exc))
            except Exception as exc:
                # Deliberately broad: this is the per-connection fault
                # boundary — an engine bug must be reported to *this*
                # client as ERR, never unwind the server loop.  It is
                # counted and logged, not silent.
                _M_UNHANDLED.inc()
                _LOG.error(
                    "command_failed",
                    error=f"{type(exc).__name__}: {exc}",
                )
                response = format_error(f"{type(exc).__name__}: {exc}")
            if not self._reply(response):
                return


class FerretServer(socketserver.ThreadingTCPServer):
    """Threaded query server bound to ``(host, port)``.

    ``port=0`` picks an ephemeral port; read ``server_address`` after
    construction.

    Two resource-exhaustion guards (docs/ROBUSTNESS.md §4):

    - ``idle_timeout`` disconnects connections with no traffic for that
      many seconds (``server.idle_disconnects`` counts them), so idle
      clients cannot pin handler threads and file descriptors;
    - an ``accept()`` that fails with EMFILE/ENFILE/ENOBUFS/ENOMEM
      backs off ``accept_backoff`` seconds instead of looping hot (or
      dying), counted in ``errors_absorbed.server.accept_overload`` —
      the listener survives fd exhaustion and resumes as soon as
      connections (hopefully idle-timed-out ones) free up.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        processor: CommandProcessor,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout: Optional[float] = 300.0,
        accept_backoff: float = 0.05,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.processor = processor
        self.idle_timeout = idle_timeout
        self.accept_backoff = accept_backoff

    def get_request(self):
        try:
            return super().get_request()
        except OSError as exc:
            if exc.errno in _OVERLOAD_ERRNOS:
                _M_ACCEPT_OVERLOAD.inc()
                _LOG.warning(
                    "accept_overload",
                    error=f"{type(exc).__name__}: {exc}",
                    backoff_seconds=self.accept_backoff,
                )
                time.sleep(self.accept_backoff)
            # Re-raised either way: serve_forever's selector loop treats
            # a get_request failure as "no request" and keeps serving,
            # so the backoff above is the only pacing needed.
            raise


def serve_background(processor: CommandProcessor, host: str = "127.0.0.1", port: int = 0) -> FerretServer:
    """Start a server on a daemon thread; returns the bound server."""
    server = FerretServer(processor, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: serve a synthetic demo engine."""
    parser = argparse.ArgumentParser(description="Ferret similarity search server")
    parser.add_argument("--datatype", default="image")
    parser.add_argument("--size", type=int, default=150)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878)
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress startup/progress logging (errors still log)",
    )
    args = parser.parse_args(argv)
    if args.quiet:
        set_quiet(True)

    from ..datatypes import build_demo_engine

    engine, _bench = build_demo_engine(args.datatype, size=args.size)
    processor = CommandProcessor(engine)
    server = FerretServer(processor, args.host, args.port)
    host, port = server.server_address
    # The ready line is a *log event* on stderr, never stdout: stdout
    # stays clean for scripted pipelines around the line protocol.
    # Supervisors should wait for the port to accept connections.
    _LOG.info(
        "ready",
        datatype=args.datatype,
        objects=len(engine),
        address=f"{host}:{port}",
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
