"""Search-quality metrics from section 6.2: first-tier, second-tier and
average precision.

All three are computed for a query ``q`` drawn from a "gold standard"
similarity set ``Q``; the remaining ``|Q| - 1`` members are the targets
the search should retrieve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

__all__ = ["QualityScores", "first_tier", "second_tier", "average_precision", "score_query"]


@dataclass(frozen=True)
class QualityScores:
    """The triple the paper's Table 1 reports per benchmark."""

    average_precision: float
    first_tier: float
    second_tier: float

    def __add__(self, other: "QualityScores") -> "QualityScores":
        return QualityScores(
            self.average_precision + other.average_precision,
            self.first_tier + other.first_tier,
            self.second_tier + other.second_tier,
        )

    def scale(self, factor: float) -> "QualityScores":
        return QualityScores(
            self.average_precision * factor,
            self.first_tier * factor,
            self.second_tier * factor,
        )

    @staticmethod
    def mean(scores: Sequence["QualityScores"]) -> "QualityScores":
        if not scores:
            return QualityScores(0.0, 0.0, 0.0)
        total = QualityScores(0.0, 0.0, 0.0)
        for s in scores:
            total = total + s
        return total.scale(1.0 / len(scores))


def _targets(similarity_set: Iterable[int], query_id: int) -> Set[int]:
    targets = set(similarity_set) - {query_id}
    if not targets:
        raise ValueError("similarity set must contain members besides the query")
    return targets


def first_tier(results: Sequence[int], similarity_set: Iterable[int], query_id: int) -> float:
    """Fraction of the similarity set found in the top ``k = |Q| - 1``."""
    targets = _targets(similarity_set, query_id)
    k = len(targets)
    top = set(results[:k])
    return len(top & targets) / k


def second_tier(results: Sequence[int], similarity_set: Iterable[int], query_id: int) -> float:
    """Like first-tier with ``k = 2 (|Q| - 1)``; ideal is still 1.0."""
    targets = _targets(similarity_set, query_id)
    k = len(targets)
    top = set(results[: 2 * k])
    return len(top & targets) / k


def average_precision(
    results: Sequence[int],
    similarity_set: Iterable[int],
    query_id: int,
    dataset_size: int,
) -> float:
    """The paper's average precision.

    With ``rank_i`` the rank (1-based) of the i-th retrieved member of
    ``Q`` (in retrieval order), average precision is
    ``(1/k) * sum_i i / rank_i``.  Members absent from ``results`` get
    the default rank ``dataset_size``.
    """
    targets = _targets(similarity_set, query_id)
    k = len(targets)
    ranks: List[int] = []
    for position, object_id in enumerate(results, start=1):
        if object_id in targets:
            ranks.append(position)
            if len(ranks) == k:
                break
    while len(ranks) < k:
        ranks.append(max(dataset_size, len(results) + 1))
    return sum((i + 1) / rank for i, rank in enumerate(ranks)) / k


def score_query(
    results: Sequence[int],
    similarity_set: Iterable[int],
    query_id: int,
    dataset_size: int,
) -> QualityScores:
    """All three metrics for one query."""
    return QualityScores(
        average_precision(results, similarity_set, query_id, dataset_size),
        first_tier(results, similarity_set, query_id),
        second_tier(results, similarity_set, query_id),
    )
