"""Trace and event inspection CLI: the postmortem workflow in one tool.

The performance tool (:mod:`repro.evaltool.benchmark`) answers "how
good/fast is the engine"; this one answers "where did *that* query's
time go, and what happened to the cluster around it".  It connects to a
live server — a single :class:`~repro.server.server.FerretServer` or a
cluster coordinator front end — and can:

- ``query <id>``: run one traced query and pretty-print the resulting
  span tree (against a coordinator: the stitched cross-node tree with
  per-node engine/rpc/net+queue splits and the laggard called out);
- ``trace [<id>]``: render the last (or a stored) trace as a tree;
- ``slow [n]``: dump the slow-query log as trees;
- ``events [n]``: print the event journal (breaker transitions,
  failovers, hedged wins, re-admissions) — the failure timeline.

Usage::

    python -m repro.evaltool.tracecli --port 7879 query 5 --top 8
    python -m repro.evaltool.tracecli --port 7879 events 50
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, TextIO

from ..observability.context import render_trace_tree
from ..server.client import ClientError, FerretClient

__all__ = ["main", "run"]


def _emit(out: TextIO, lines: List[str]) -> None:
    for line in lines:
        out.write(line + "\n")


def run(client: FerretClient, args: argparse.Namespace, out: TextIO) -> int:
    """Execute one subcommand against ``client``; returns an exit code."""
    if args.command == "query":
        results, tree = client.traced_query(
            args.id, top=args.top, method=args.method
        )
        for object_id, distance in results:
            out.write(f"{object_id} {distance:.6f}\n")
        if tree is None:
            out.write("(no trace piggybacked — is tracing disabled?)\n")
            return 1
        _emit(out, render_trace_tree(tree))
        return 0
    if args.command == "trace":
        _emit(out, client.trace_tree(args.id))
        return 0
    if args.command == "slow":
        line = f"trace slow {args.n} --tree" if args.n else "trace slow --tree"
        _emit(out, client.send(line))
        return 0
    if args.command == "events":
        _emit(out, client.events(args.n))
        return 0
    raise AssertionError(f"unhandled subcommand {args.command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Ferret trace/event inspection tool"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878)
    sub = parser.add_subparsers(dest="command", required=True)

    p_query = sub.add_parser("query", help="run a traced query, render tree")
    p_query.add_argument("id", type=int)
    p_query.add_argument("--top", type=int, default=10)
    p_query.add_argument("--method", default="filtering")

    p_trace = sub.add_parser("trace", help="render the last or a stored trace")
    p_trace.add_argument("id", nargs="?", default=None)

    p_slow = sub.add_parser("slow", help="dump the slow-query log as trees")
    p_slow.add_argument("n", nargs="?", type=int, default=None)

    p_events = sub.add_parser("events", help="print the event journal")
    p_events.add_argument("n", nargs="?", type=int, default=None)

    args = parser.parse_args(argv)
    try:
        client = FerretClient(args.host, args.port)
    except OSError as exc:
        print(f"cannot connect to {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    with client:
        try:
            return run(client, args, sys.stdout)
        except ClientError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1


if __name__ == "__main__":
    raise SystemExit(main())
