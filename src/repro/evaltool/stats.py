"""Statistics helpers for the performance evaluation tool.

The paper's tool reports "statistics like average precision and time
spent for the query"; real tuning sessions also need uncertainty (is a
parameter change signal or noise?) and latency tails.  This module adds
bootstrap confidence intervals over per-query scores, paired comparisons
between two configurations, and latency percentile summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .metrics import QualityScores

__all__ = [
    "ConfidenceInterval",
    "bootstrap_ci",
    "quality_summary",
    "paired_difference",
    "latency_percentiles",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a bootstrap interval."""

    mean: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return f"{self.mean:.3f} [{self.low:.3f}, {self.high:.3f}] ({pct}%)"


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for the mean."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(num_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        mean=float(arr.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def quality_summary(
    per_query: Sequence[QualityScores], confidence: float = 0.95, seed: int = 0
) -> Dict[str, ConfidenceInterval]:
    """Bootstrap CIs for all three quality metrics of one evaluation."""
    if not per_query:
        raise ValueError("no per-query scores")
    return {
        "average_precision": bootstrap_ci(
            [s.average_precision for s in per_query], confidence, seed=seed
        ),
        "first_tier": bootstrap_ci(
            [s.first_tier for s in per_query], confidence, seed=seed
        ),
        "second_tier": bootstrap_ci(
            [s.second_tier for s in per_query], confidence, seed=seed
        ),
    }


def paired_difference(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI of the per-query difference ``a - b``.

    The two sequences must come from the same query set in the same
    order (the paired design removes cross-query variance, which usually
    dwarfs the configuration effect being measured).  A CI excluding 0
    means the difference is statistically meaningful at that level.
    """
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("paired comparison needs equal-length score lists")
    return bootstrap_ci(a - b, confidence, seed=seed)


def latency_percentiles(
    seconds: Sequence[float],
    percentiles: Tuple[float, ...] = (50.0, 90.0, 99.0),
) -> Dict[str, float]:
    """p50/p90/p99-style latency summary of per-query timings."""
    arr = np.asarray(seconds, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no latency samples")
    out = {"mean": float(arr.mean()), "max": float(arr.max())}
    for p in percentiles:
        out[f"p{p:g}"] = float(np.percentile(arr, p))
    return out
