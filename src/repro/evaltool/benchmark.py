"""Performance evaluation tool (section 4.3).

Drives batch queries against an engine from a benchmark file describing
ground-truth similarity sets, and reports the paper's quality metrics
plus timing.  The benchmark file format is line-oriented::

    # comment
    set <name> <id> <id> <id> ...

Each ``set`` line is one similarity set of object ids.  By convention
(section 6.3.1) the first id of each set is used as the query object.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from ..core.engine import SearchMethod, SimilaritySearchEngine
from ..observability.log import get_logger, set_quiet
from .metrics import QualityScores, score_query

__all__ = [
    "SimilaritySet",
    "BenchmarkSuite",
    "EvaluationResult",
    "evaluate_engine",
    "load_benchmark",
    "save_benchmark",
]

_LOG = get_logger("evaltool")


@dataclass(frozen=True)
class SimilaritySet:
    """One gold-standard set of mutually similar object ids."""

    name: str
    members: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError(f"similarity set {self.name!r} needs >= 2 members")

    @property
    def query_id(self) -> int:
        return self.members[0]


@dataclass
class BenchmarkSuite:
    """A named collection of similarity sets."""

    name: str
    sets: List[SimilaritySet] = field(default_factory=list)

    def add(self, name: str, members: Sequence[int]) -> None:
        self.sets.append(SimilaritySet(name, tuple(int(m) for m in members)))

    def __len__(self) -> int:
        return len(self.sets)


def load_benchmark(path: str, name: Optional[str] = None) -> BenchmarkSuite:
    """Parse a benchmark file (see module docstring for the format)."""
    suite = BenchmarkSuite(name or path)
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] != "set" or len(parts) < 4:
                raise ValueError(f"{path}:{lineno}: malformed line {line!r}")
            suite.add(parts[1], [int(p) for p in parts[2:]])
    return suite


def save_benchmark(suite: BenchmarkSuite, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# benchmark suite: {suite.name}\n")
        for sim_set in suite.sets:
            ids = " ".join(str(m) for m in sim_set.members)
            fh.write(f"set {sim_set.name} {ids}\n")


@dataclass
class EvaluationResult:
    """Aggregated quality + timing over a whole suite."""

    suite_name: str
    method: SearchMethod
    quality: QualityScores
    per_query: List[QualityScores]
    avg_query_seconds: float
    num_queries: int
    per_set: Dict[str, QualityScores] = field(default_factory=dict)
    query_seconds: List[float] = field(default_factory=list)

    def row(self) -> Dict[str, float]:
        """Table-1-shaped summary row."""
        return {
            "average_precision": round(self.quality.average_precision, 3),
            "first_tier": round(self.quality.first_tier, 3),
            "second_tier": round(self.quality.second_tier, 3),
            "avg_query_seconds": round(self.avg_query_seconds, 5),
        }

    def worst_sets(self, count: int = 5) -> List[Tuple[str, QualityScores]]:
        """The lowest-precision similarity sets — where to look when a
        configuration underperforms."""
        ranked = sorted(
            self.per_set.items(), key=lambda kv: kv[1].average_precision
        )
        return ranked[: max(0, count)]

    def latency_quantile(self, q: float) -> float:
        """Exact ``q``-quantile of the recorded per-query wall times
        (linear interpolation between order statistics; NaN with no
        recorded latencies).  Unlike the server's histogram-derived
        ``stat`` percentiles, these come from the raw measurements."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.query_seconds:
            return float("nan")
        ordered = sorted(self.query_seconds)
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)

    def report(self) -> str:
        """Human-readable multi-line report with a per-set breakdown."""
        lines = [
            f"suite={self.suite_name} method={self.method.value} "
            f"queries={self.num_queries}",
            f"  avg precision {self.quality.average_precision:.3f}  "
            f"1st tier {self.quality.first_tier:.3f}  "
            f"2nd tier {self.quality.second_tier:.3f}  "
            f"{self.avg_query_seconds:.4f}s/query",
        ]
        if self.query_seconds:
            lines.append(
                "  latency p50 "
                f"{self.latency_quantile(0.50) * 1000.0:.2f}ms  "
                f"p95 {self.latency_quantile(0.95) * 1000.0:.2f}ms  "
                f"p99 {self.latency_quantile(0.99) * 1000.0:.2f}ms"
            )
        for name, scores in sorted(self.per_set.items()):
            lines.append(
                f"    {name:<20} AP {scores.average_precision:.3f}"
            )
        return "\n".join(lines)


def evaluate_engine(
    engine: SimilaritySearchEngine,
    suite: BenchmarkSuite,
    method: SearchMethod = SearchMethod.FILTERING,
    top_k: Optional[int] = None,
    queries_per_set: int = 1,
) -> EvaluationResult:
    """Run the suite's queries and score them.

    ``queries_per_set`` > 1 uses additional members of each set as extra
    queries (the paper uses the first member only; more queries tighten
    the estimate on synthetic data).  ``top_k`` defaults to enough
    results to score second-tier for the largest set.
    """
    dataset_size = len(engine)
    per_query: List[QualityScores] = []
    per_set: Dict[str, QualityScores] = {}
    query_seconds: List[float] = []
    total_time = 0.0
    num_queries = 0
    for sim_set in suite.sets:
        set_scores: List[QualityScores] = []
        k_needed = top_k or max(20, 2 * (len(sim_set.members) - 1) + 5)
        for query_id in sim_set.members[:queries_per_set]:
            if query_id not in engine:
                raise KeyError(
                    f"benchmark references unknown object {query_id}"
                )
            started = time.perf_counter()
            results = engine.query_by_id(
                query_id, top_k=k_needed, method=method, exclude_self=True
            )
            elapsed = time.perf_counter() - started
            total_time += elapsed
            query_seconds.append(elapsed)
            result_ids = [r.object_id for r in results]
            scores = score_query(result_ids, sim_set.members, query_id, dataset_size)
            per_query.append(scores)
            set_scores.append(scores)
            num_queries += 1
        per_set[sim_set.name] = QualityScores.mean(set_scores)
    return EvaluationResult(
        suite_name=suite.name,
        method=method,
        quality=QualityScores.mean(per_query),
        per_query=per_query,
        avg_query_seconds=total_time / max(1, num_queries),
        num_queries=num_queries,
        per_set=per_set,
        query_seconds=query_seconds,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: evaluate a registered data type's demo engine on a benchmark
    file.  Mostly useful for the synthetic examples; library users call
    :func:`evaluate_engine` directly."""
    parser = argparse.ArgumentParser(description="Ferret performance evaluation tool")
    parser.add_argument("benchmark", help="benchmark file (set <name> <ids...>)")
    parser.add_argument(
        "--method",
        default="filtering",
        choices=[m.value for m in SearchMethod],
    )
    parser.add_argument("--datatype", default="image")
    parser.add_argument("--size", type=int, default=200, help="dataset size")
    parser.add_argument("--report", action="store_true",
                        help="print the per-set breakdown")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress logging (errors still log)")
    args = parser.parse_args(argv)
    if args.quiet:
        set_quiet(True)

    from ..datatypes import build_demo_engine

    # Progress goes through the structured logger (stderr); stdout
    # carries only the evaluation result, so it stays pipeable.
    _LOG.info("building_engine", datatype=args.datatype, size=args.size)
    engine, _extra = build_demo_engine(args.datatype, size=args.size)
    suite = load_benchmark(args.benchmark)
    _LOG.info("benchmark_loaded", suite=suite.name, sets=len(suite))
    result = evaluate_engine(engine, suite, SearchMethod.parse(args.method))
    _LOG.info(
        "evaluation_done",
        queries=result.num_queries,
        avg_query_seconds=f"{result.avg_query_seconds:.5f}",
    )
    if args.report:
        print(result.report())
    else:
        print(f"suite={result.suite_name} method={result.method.value}")
        for key, value in result.row().items():
            print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
