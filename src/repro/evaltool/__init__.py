"""Performance evaluation tool: quality metrics and batch query driver
(sections 4.3 and 6.2)."""

from .benchmark import (
    BenchmarkSuite,
    EvaluationResult,
    SimilaritySet,
    evaluate_engine,
    load_benchmark,
    save_benchmark,
)
from .metrics import (
    QualityScores,
    average_precision,
    first_tier,
    score_query,
    second_tier,
)
from .stats import (
    ConfidenceInterval,
    bootstrap_ci,
    latency_percentiles,
    paired_difference,
    quality_summary,
)

__all__ = [
    "BenchmarkSuite",
    "ConfidenceInterval",
    "bootstrap_ci",
    "latency_percentiles",
    "paired_difference",
    "quality_summary",
    "EvaluationResult",
    "QualityScores",
    "SimilaritySet",
    "average_precision",
    "evaluate_engine",
    "first_tier",
    "load_benchmark",
    "save_benchmark",
    "score_query",
    "second_tier",
]
